"""Unit tests for the fleet lifecycle state machines: RolloutPolicy
validation, the QueryRollout canary→widen→complete/abort machine,
FleetManager membership transitions (live → disconnected → stale →
rejoin), rendezvous ranking properties, and the full-jitter backoff.

Everything here is synchronous and socket-free; the daemon-driven
integration behaviour lives in test_rollout_live.py."""

import pytest

from repro.core.query.targets import (
    rendezvous_order,
    rendezvous_sample,
)
from repro.live.fleet import (
    MEMBER_DISCONNECTED,
    MEMBER_LIVE,
    MEMBER_STALE,
    ROLLOUT_ABORTED,
    ROLLOUT_CANARY,
    ROLLOUT_COMPLETE,
    ROLLOUT_WIDENING,
    FleetManager,
    QueryRollout,
    RolloutAbort,
    RolloutPolicy,
)
from repro.live.transport import JitteredBackoff


class _Desc:
    """Stand-in HostDescription: just the fields FleetManager reads."""

    def __init__(self, name, services=("Frontends",), datacenter="dc1"):
        self.name = name
        self.services = frozenset(services)
        self.datacenter = datacenter


class _Conn:
    """Stand-in _AgentConn: last_seen + query_costs, duck-typed."""

    def __init__(self, last_seen=0.0, query_costs=None):
        self.last_seen = last_seen
        self.query_costs = query_costs if query_costs is not None else {}


class TestRolloutPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RolloutPolicy(canary_hosts=0)
        with pytest.raises(ValueError):
            RolloutPolicy(canary_hosts=1, widen_factor=1.0)
        with pytest.raises(ValueError):
            RolloutPolicy(canary_hosts=1, bake_intervals=0)
        with pytest.raises(ValueError):
            RolloutPolicy(canary_hosts=1, max_ewma_ns=0.0)

    def test_quota_grows_geometrically(self):
        policy = RolloutPolicy(canary_hosts=2, widen_factor=2.0)
        assert [policy.quota(s) for s in range(4)] == [2, 4, 8, 16]
        # Fractional factors still grow at least one host per stage via ceil.
        slow = RolloutPolicy(canary_hosts=1, widen_factor=1.5)
        assert [slow.quota(s) for s in range(4)] == [1, 2, 3, 4]

    def test_payload_round_trip(self):
        policy = RolloutPolicy(3, widen_factor=3.0, bake_intervals=5, max_ewma_ns=100.0)
        again = RolloutPolicy.from_payload(policy.as_dict())
        assert again.as_dict() == policy.as_dict()
        # max_ewma_ns is omitted from the dict when unset, and defaults apply.
        assert "max_ewma_ns" not in RolloutPolicy(1).as_dict()
        defaulted = RolloutPolicy.from_payload({"canary_hosts": 2})
        assert defaulted.widen_factor == 2.0
        assert defaulted.bake_intervals == 2
        assert defaulted.max_ewma_ns is None

    def test_from_payload_propagates_none(self):
        assert RolloutPolicy.from_payload(None) is None


class TestQueryRollout:
    def _rollout(self, n_hosts=6, canary=1, factor=2.0, bake=2, ceiling=None):
        policy = RolloutPolicy(canary, widen_factor=factor, bake_intervals=bake,
                               max_ewma_ns=ceiling)
        order = [f"h{i}" for i in range(n_hosts)]
        ro = QueryRollout("q00001", policy, order=order)
        ro.note_installed(order[: ro.quota()])
        return ro

    def test_canary_then_geometric_widening_to_complete(self):
        ro = self._rollout(n_hosts=6, canary=1, factor=2.0, bake=2)
        assert ro.state == ROLLOUT_CANARY
        assert ro.installed == ["h0"]
        assert ro.pending() == ["h1", "h2", "h3", "h4", "h5"]

        # The bake gate: widen only after bake_intervals healthy ticks.
        assert not ro.tick_healthy()
        assert ro.tick_healthy()
        tranche = ro.widen_tranche()
        assert tranche == ["h1"]          # quota(1) = 2, one already installed
        ro.note_installed(tranche)
        assert ro.state == ROLLOUT_WIDENING
        assert ro.healthy_ticks == 0      # the bake restarts per stage

        assert ro.tick_healthy() is False and ro.tick_healthy()
        ro.note_installed(ro.widen_tranche())  # quota(2) = 4
        assert ro.installed == ["h0", "h1", "h2", "h3"]

        assert ro.tick_healthy() is False and ro.tick_healthy()
        ro.note_installed(ro.widen_tranche())  # quota(3) = 8 > 6: the rest
        assert ro.installed == [f"h{i}" for i in range(6)]
        assert ro.state == ROLLOUT_COMPLETE
        assert not ro.active
        assert ro.tick_healthy() is False  # completed machines do not bake

    def test_quota_clamps_to_order_length(self):
        ro = self._rollout(n_hosts=3, canary=8)
        assert ro.quota() == 3
        assert ro.installed == ["h0", "h1", "h2"]
        assert ro.state == ROLLOUT_COMPLETE  # nothing left to widen onto

    def test_admit_queues_newcomer_until_widening_reaches_it(self):
        ro = self._rollout(n_hosts=2, canary=1)
        assert ro.admit("late-0")
        assert not ro.admit("late-0")      # idempotent
        assert not ro.admit("h0")          # already ranked
        assert ro.order == ["h0", "h1", "late-0"]
        assert "late-0" not in ro.installed
        ro.note_installed(ro.widen_tranche())   # stage 1: quota 2
        assert ro.installed == ["h0", "h1"]
        ro.note_installed(ro.widen_tranche())   # stage 2: quota 4 covers it
        assert "late-0" in ro.installed
        assert ro.state == ROLLOUT_COMPLETE

    def test_admit_into_completed_rollout_installs_immediately(self):
        ro = self._rollout(n_hosts=1, canary=1)
        assert ro.state == ROLLOUT_COMPLETE
        assert ro.admit("late-0")
        assert "late-0" in ro.installed

    def test_retire_drops_pending_but_never_installed(self):
        ro = self._rollout(n_hosts=3, canary=1)
        assert ro.retire("h2")             # pending: gone from the order
        assert ro.order == ["h0", "h1"]
        assert not ro.retire("h0")         # installed: stays (coverage's job)
        assert not ro.retire("ghost")
        ro.note_installed(ro.widen_tranche())
        assert ro.state == ROLLOUT_COMPLETE
        assert ro.installed == ["h0", "h1"]

    def test_check_health_quarantine_aborts(self):
        ro = self._rollout(n_hosts=4, canary=2)
        abort = ro.check_health({"h1": "impact-budget-exceeded: test"}, {})
        assert abort is not None
        assert abort.reason == "canary-quarantined"
        assert abort.host == "h1"
        assert abort.stage == 0
        # A quarantine on a host the rollout has not installed is not ours.
        assert ro.check_health({"h3": "impact-budget-exceeded"}, {}) is None

    def test_check_health_cost_ceiling_aborts(self):
        ro = self._rollout(n_hosts=4, canary=2, ceiling=1000.0)
        assert ro.check_health({}, {"h0": 999.0}) is None
        abort = ro.check_health({}, {"h0": 999.0, "h1": 1500.0})
        assert abort is not None
        assert abort.reason == "cost-regression"
        assert abort.host == "h1"
        # No ceiling configured: cost is the governor's problem, not ours.
        assert self._rollout().check_health({}, {"h0": 1e12}) is None

    def test_record_abort_freezes_the_machine(self):
        ro = self._rollout(n_hosts=4, canary=1)
        abort = RolloutAbort("canary-quarantined", "h0", "detail", 0)
        ro.record_abort(abort)
        assert ro.state == ROLLOUT_ABORTED
        assert not ro.active
        assert ro.widen_tranche() == []
        assert not ro.tick_healthy()
        assert ro.as_dict()["abort"]["reason"] == "canary-quarantined"
        assert RolloutAbort.from_dict(ro.as_dict()["abort"]).host == "h0"
        assert RolloutAbort.from_dict(None) is None

    def test_as_dict_round_trips_through_resume(self):
        ro = self._rollout(n_hosts=6, canary=1)
        ro.tick_healthy(), ro.tick_healthy()
        ro.note_installed(ro.widen_tranche())
        snap = ro.as_dict()
        again = QueryRollout(
            "q00001",
            RolloutPolicy.from_payload(snap["policy"]),
            order=snap["order"],
            installed=snap["installed"],
            stage=snap["stage"],
            state=snap["state"],
            abort=RolloutAbort.from_dict(snap["abort"]),
        )
        assert again.as_dict() == snap
        assert again.healthy_ticks == 0   # the bake timer restarts on resume


class TestFleetManager:
    def test_stale_after_defaults_to_twice_the_lease(self):
        fleet = FleetManager(lease_seconds=10.0)
        assert fleet.stale_after == 20.0
        assert FleetManager(5.0, stale_after=30.0).stale_after == 30.0
        with pytest.raises(ValueError):
            FleetManager(lease_seconds=10.0, stale_after=5.0)

    def test_lifecycle_live_disconnected_stale_rejoin(self):
        fleet = FleetManager(lease_seconds=1.0)  # stale after 2.0
        conn = _Conn(last_seen=0.0)
        member = fleet.attach(_Desc("web-0"), conn, epoch=1, now=0.0)
        assert member.state == MEMBER_LIVE
        assert len(fleet) == 1 and "web-0" in fleet
        assert [m.name for m in fleet.live()] == ["web-0"]

        # Silent past the lease: flagged for eviction, still attached.
        assert [m.name for m in fleet.lease_lapsed(1.5)] == ["web-0"]
        fleet.detach("web-0", 1.5)
        assert member.state == MEMBER_DISCONNECTED
        assert fleet.live() == [] and fleet.conn("web-0") is None
        assert "web-0" in fleet           # membership survives the channel

        # Not yet silent past stale_after (last_seen 0.0 + 2.0).
        assert fleet.age_out(1.9) == []
        aged = fleet.age_out(2.1)
        assert [m.name for m in aged] == ["web-0"]
        assert member.state == MEMBER_STALE
        assert fleet.age_out(3.0) == []   # transition reported exactly once

        # A rejoin at any point flips back to live with the new epoch.
        rejoined = fleet.attach(_Desc("web-0"), _Conn(last_seen=5.0), epoch=2, now=5.0)
        assert rejoined is member
        assert member.state == MEMBER_LIVE and member.epoch == 2

    def test_attached_member_never_ages_out(self):
        fleet = FleetManager(lease_seconds=1.0)
        fleet.attach(_Desc("web-0"), _Conn(last_seen=0.0), epoch=1, now=0.0)
        # Still attached (lease expiry is the daemon's move): no age-out.
        assert fleet.age_out(100.0) == []

    def test_last_seen_follows_the_conn_while_attached(self):
        fleet = FleetManager(lease_seconds=1.0)
        conn = _Conn(last_seen=0.0)
        member = fleet.attach(_Desc("web-0"), conn, epoch=1, now=0.0)
        conn.last_seen = 7.0              # heartbeats move the conn's clock
        assert member.last_seen == 7.0
        assert fleet.lease_lapsed(7.5) == []
        fleet.detach("web-0", 8.0)
        assert member.last_seen == 7.0    # frozen at the last frame seen

    def test_ewma_by_host_reads_live_heartbeat_costs(self):
        fleet = FleetManager(lease_seconds=1.0)
        fleet.attach(
            _Desc("web-0"),
            _Conn(query_costs={"q1": {"ewma_ns": 120.0, "routed": 9}}),
            epoch=1, now=0.0,
        )
        fleet.attach(
            _Desc("web-1"), _Conn(query_costs={"q2": {"ewma_ns": 5.0}}),
            epoch=1, now=0.0,
        )
        fleet.detach("web-1", 0.0)        # detached hosts report nothing
        assert fleet.ewma_by_host("q1") == {"web-0": 120.0}
        assert fleet.ewma_by_host("q2") == {}

    def test_stats_names_every_state(self):
        fleet = FleetManager(lease_seconds=1.0)
        fleet.attach(_Desc("a"), _Conn(last_seen=0.0), epoch=3, now=0.0)
        fleet.attach(_Desc("b"), _Conn(last_seen=0.0), epoch=1, now=0.0)
        fleet.detach("b", 0.5)
        fleet.attach(_Desc("c"), _Conn(last_seen=0.0), epoch=1, now=0.0)
        fleet.detach("c", 0.1)
        fleet.age_out(2.5)                # c and b silent past 2.0
        rows = {row["host"]: row for row in fleet.stats(2.5)}
        assert rows["a"]["state"] == MEMBER_LIVE and rows["a"]["epoch"] == 3
        assert rows["b"]["state"] == MEMBER_STALE
        assert rows["c"]["state"] == MEMBER_STALE
        assert rows["b"]["last_seen_age"] == pytest.approx(2.5)
        assert rows["a"]["services"] == ["Frontends"]


class TestRendezvous:
    NAMES = [f"web-{i}" for i in range(40)]

    def test_order_is_deterministic_and_seed_sensitive(self):
        assert rendezvous_order(self.NAMES, 7) == rendezvous_order(self.NAMES, 7)
        assert rendezvous_order(self.NAMES, 7) != rendezvous_order(self.NAMES, 8)
        assert sorted(rendezvous_order(self.NAMES, 7)) == sorted(self.NAMES)

    def test_churn_moves_only_the_churned_host(self):
        # Remove one host: everyone else keeps their relative order.
        full = rendezvous_order(self.NAMES, 42)
        for gone in (full[0], full[17], full[-1]):
            survivors = [n for n in self.NAMES if n != gone]
            assert rendezvous_order(survivors, 42) == [
                n for n in full if n != gone
            ]

    def test_sample_changes_by_at_most_one_on_join(self):
        # 40 hosts -> quota 10; 41 -> quota 11.  Every original pick keeps
        # its slot (ranks are per-name-stable, so a newcomer shifts each
        # original's absolute rank by at most one); the sample grows by
        # exactly one host — never a reshuffle.
        before = set(rendezvous_sample(self.NAMES, 0.25, seed=9))
        after = set(rendezvous_sample(self.NAMES + ["web-new"], 0.25, seed=9))
        assert before <= after
        assert len(after - before) == 1

    def test_sample_rate_one_returns_full_rank_order(self):
        picked = rendezvous_sample(self.NAMES, 1.0, seed=9)
        assert picked == rendezvous_order(self.NAMES, 9)

    def test_sample_at_least_one(self):
        assert len(rendezvous_sample(self.NAMES, 0.001, seed=9)) == 1


class TestJitteredBackoff:
    def test_same_name_same_sequence_across_instances(self):
        a = JitteredBackoff("web-0", base=0.05, cap=2.0, salt="control")
        b = JitteredBackoff("web-0", base=0.05, cap=2.0, salt="control")
        assert [a.next_delay() for _ in range(6)] == [
            b.next_delay() for _ in range(6)
        ]

    def test_different_names_and_salts_decorrelate(self):
        a = JitteredBackoff("web-0", 0.05, 2.0, salt="control")
        b = JitteredBackoff("web-1", 0.05, 2.0, salt="control")
        c = JitteredBackoff("web-0", 0.05, 2.0, salt="data")
        seq = lambda j: [j.next_delay() for _ in range(6)]  # noqa: E731
        sa, sb, sc = seq(a), seq(b), seq(c)
        assert sa != sb and sa != sc

    def test_full_jitter_stays_under_the_doubling_ceiling(self):
        backoff = JitteredBackoff("web-0", base=0.05, cap=0.4, salt="t")
        ceilings = [0.05, 0.1, 0.2, 0.4, 0.4, 0.4]
        for ceiling in ceilings:
            assert 0.0 <= backoff.next_delay() <= ceiling

    def test_reset_restarts_ceiling_but_not_the_stream(self):
        backoff = JitteredBackoff("web-0", base=0.05, cap=2.0, salt="t")
        first = backoff.next_delay()
        backoff.next_delay()
        backoff.reset()
        assert backoff._ceiling == 0.05
        # The RNG stream keeps advancing: no replay of the first delay.
        assert backoff.next_delay() != first
