"""Process-fault chaos for the ShardPool: SIGKILL and SIGSTOP a worker
mid-scenario and hold the supervisor to its contract — the pool keeps
serving, the lost slice is *named* as a shard gap in degraded coverage,
and the parent-side accounting (seen / dropped / shed) stays exact
through the respawn because it never lived in the worker.

Marked ``chaos_pool``: CI runs these in their own step, guarded by the
pytest-timeout ceiling, so a wedged supervisor fails loudly.
"""

from __future__ import annotations

import pytest

from repro.core.agent.transport import EventBatch, encode_full_batch
from repro.core.central.pool import ShardPool
from repro.core.events import Event, EventRegistry
from repro.core.query import parse_query, plan_query, validate_query
from repro.live.chaos import sigcont_worker, sigkill_worker, sigstop_worker

pytestmark = pytest.mark.chaos_pool

QUERY = (
    "select bid.exchange_id, COUNT(*), SUM(bid.bid_price) "
    "from bid window 60s group by bid.exchange_id;"
)


def _registry() -> EventRegistry:
    registry = EventRegistry()
    registry.define("bid", [("exchange_id", "long"), ("bid_price", "double")])
    return registry


def _plan(registry, query_id="q1"):
    return plan_query(validate_query(parse_query(QUERY), registry), query_id)


def _batch(window: int, host: str, n: int = 60, rid_base: int = 0,
           dropped: int = 0, shed: int = 0) -> EventBatch:
    events = [
        Event(
            "bid",
            {"exchange_id": i % 4, "bid_price": (i % 8) * 0.25},
            rid_base + i,
            window * 60.0 + (i % 60),
            host,
        )
        for i in range(n)
    ]
    return EventBatch(
        host=host, query_id="q1", events=events,
        seen_counts={("bid", window): n + dropped + shed},
        dropped=dropped, shed=shed,
    )


def test_sigkill_one_of_four_workers_mid_scenario():
    registry = _registry()
    sent_dropped = sent_shed = 0
    with ShardPool(workers=4, grace_seconds=1.0) as pool:
        pool.register(
            _plan(registry).central_object,
            planned_hosts=2, targeted_hosts=2, targeted_names=("h1", "h2"),
        )
        for host, dropped, shed in (("h1", 3, 5), ("h2", 0, 0)):
            pool.ingest(_batch(0, host, dropped=dropped, shed=shed))
            sent_dropped += dropped
            sent_shed += shed

        dead_pid = sigkill_worker(pool, 2)
        assert dead_pid > 0

        # The pool keeps serving: the kill is detected on the next send
        # that touches shard 2, routed to the supervisor, never the caller.
        pool.ingest(_batch(0, "h1", rid_base=60, dropped=1))
        sent_dropped += 1
        (w0,) = pool.advance(61.5)

        # Degraded coverage names exactly the lost shard.
        assert w0.coverage is not None and w0.coverage.degraded
        assert list(w0.coverage.shard_gaps) == ["shard-2"]
        assert "worker respawned" in w0.coverage.shard_gaps["shard-2"]

        # Exact conservation across the respawn: dropped/shed counters are
        # parent-side state and survive the worker loss to the byte.
        assert w0.host_dropped == sent_dropped
        assert w0.coverage.shed == {"h1": 5}

        health = pool.pool_health()
        assert health["alive"] == 4
        assert health["respawns"] == 1
        assert health["respawn_log"][0]["shard"] == 2

        # Post-respawn windows are whole: re-registration worked, every
        # event of window 1 is aggregated, coverage shows no gap.
        for host in ("h1", "h2"):
            pool.ingest(_batch(1, host, rid_base=120))
        (w1,) = pool.advance(121.5)
        assert w1.coverage.shard_gaps == {}
        assert sum(row[1] for row in w1.rows) == 120

        results = pool.finish("q1")
        assert results.total_host_dropped == sent_dropped
        assert results.total_host_shed == sent_shed


def test_sigkill_worker_mid_frame_ingest():
    """The zero-copy path must not weaken self-healing: a worker that was
    handed raw frame shards and then SIGKILLed yields the exact same
    shard-gap coverage and seen/dropped/shed conservation as the object
    path, and post-respawn frame ingest lands whole windows again."""
    registry = _registry()
    sent_dropped = sent_shed = 0
    with ShardPool(workers=4, grace_seconds=1.0) as pool:
        pool.register(
            _plan(registry).central_object,
            planned_hosts=2, targeted_hosts=2, targeted_names=("h1", "h2"),
        )
        for host, dropped, shed in (("h1", 3, 5), ("h2", 0, 0)):
            pool.ingest_frame(
                encode_full_batch(_batch(0, host, dropped=dropped, shed=shed))
            )
            sent_dropped += dropped
            sent_shed += shed

        dead_pid = sigkill_worker(pool, 2)
        assert dead_pid > 0

        # The next frame that touches shard 2 hits the dead pipe; the
        # supervisor respawns and the retried slice lands on the fresh
        # worker — the caller never sees the fault.
        pool.ingest_frame(encode_full_batch(_batch(0, "h1", rid_base=60,
                                                   dropped=1)))
        sent_dropped += 1
        (w0,) = pool.advance(61.5)

        assert w0.coverage is not None and w0.coverage.degraded
        assert list(w0.coverage.shard_gaps) == ["shard-2"]
        assert "worker respawned" in w0.coverage.shard_gaps["shard-2"]

        # Seen / dropped / shed are parent-side accounting extracted in
        # the same scan that sliced the frames; the kill cannot touch it.
        assert w0.host_dropped == sent_dropped
        assert w0.coverage.shed == {"h1": 5}

        health = pool.pool_health()
        assert health["alive"] == 4
        assert health["respawns"] == 1
        assert health["respawn_log"][0]["shard"] == 2

        # Post-respawn frames are whole: re-registration covered the new
        # worker, window 1 aggregates every event, no gap is reported.
        for host in ("h1", "h2"):
            pool.ingest_frame(encode_full_batch(_batch(1, host, rid_base=120)))
        (w1,) = pool.advance(121.5)
        assert w1.coverage.shard_gaps == {}
        assert sum(row[1] for row in w1.rows) == 120

        results = pool.finish("q1")
        assert results.total_host_dropped == sent_dropped
        assert results.total_host_shed == sent_shed


def test_sigstop_hung_worker_detected_and_sigcont_is_harmless():
    registry = _registry()
    with ShardPool(workers=4, grace_seconds=1.0, worker_timeout=0.5) as pool:
        pool.register(_plan(registry).central_object)
        pool.ingest(_batch(0, "h1"))
        sigstop_worker(pool, 1)

        # The frozen worker's pipe stays open, so only the close-reply
        # heartbeat can catch it: the parent waits worker_timeout, gives
        # up, respawns, and degrades coverage for the open window.
        (w0,) = pool.advance(61.5)
        assert "hung" in w0.coverage.shard_gaps["shard-1"]
        health = pool.pool_health()
        assert health["alive"] == 4 and health["respawns"] == 1

        # Thawing the replaced worker must be a no-op (the supervisor
        # already SIGKILLed the frozen pid; the helper swallows the race).
        sigcont_worker(pool, 1)

        pool.ingest(_batch(1, "h1", rid_base=60))
        (w1,) = pool.advance(121.5)
        assert w1.coverage is None
        assert sum(row[1] for row in w1.rows) == 60
        pool.finish("q1")
