"""Process-fault chaos for the ShardPool: SIGKILL and SIGSTOP a worker
mid-scenario and hold the supervisor to its contract — the pool keeps
serving, the lost slice is *named* as a shard gap in degraded coverage,
and the parent-side accounting (seen / dropped / shed) stays exact
through the respawn because it never lived in the worker.

Marked ``chaos_pool``: CI runs these in their own step, guarded by the
pytest-timeout ceiling, so a wedged supervisor fails loudly.
"""

from __future__ import annotations

import pytest

from repro.core.agent.transport import EventBatch, encode_full_batch
from repro.core.central.pool import ShardPool
from repro.core.central.shm_ring import RingUnavailable, ShmRing
from repro.core.events import Event, EventRegistry
from repro.core.query import parse_query, plan_query, validate_query
from repro.live.chaos import sigcont_worker, sigkill_worker, sigstop_worker

pytestmark = pytest.mark.chaos_pool

QUERY = (
    "select bid.exchange_id, COUNT(*), SUM(bid.bid_price) "
    "from bid window 60s group by bid.exchange_id;"
)


def _registry() -> EventRegistry:
    registry = EventRegistry()
    registry.define("bid", [("exchange_id", "long"), ("bid_price", "double")])
    return registry


def _plan(registry, query_id="q1"):
    return plan_query(validate_query(parse_query(QUERY), registry), query_id)


def _batch(window: int, host: str, n: int = 60, rid_base: int = 0,
           dropped: int = 0, shed: int = 0) -> EventBatch:
    events = [
        Event(
            "bid",
            {"exchange_id": i % 4, "bid_price": (i % 8) * 0.25},
            rid_base + i,
            window * 60.0 + (i % 60),
            host,
        )
        for i in range(n)
    ]
    return EventBatch(
        host=host, query_id="q1", events=events,
        seen_counts={("bid", window): n + dropped + shed},
        dropped=dropped, shed=shed,
    )


def test_sigkill_one_of_four_workers_mid_scenario():
    registry = _registry()
    sent_dropped = sent_shed = 0
    with ShardPool(workers=4, grace_seconds=1.0) as pool:
        pool.register(
            _plan(registry).central_object,
            planned_hosts=2, targeted_hosts=2, targeted_names=("h1", "h2"),
        )
        for host, dropped, shed in (("h1", 3, 5), ("h2", 0, 0)):
            pool.ingest(_batch(0, host, dropped=dropped, shed=shed))
            sent_dropped += dropped
            sent_shed += shed

        dead_pid = sigkill_worker(pool, 2)
        assert dead_pid > 0

        # The pool keeps serving: the kill is detected on the next send
        # that touches shard 2, routed to the supervisor, never the caller.
        pool.ingest(_batch(0, "h1", rid_base=60, dropped=1))
        sent_dropped += 1
        (w0,) = pool.advance(61.5)

        # Degraded coverage names exactly the lost shard.
        assert w0.coverage is not None and w0.coverage.degraded
        assert list(w0.coverage.shard_gaps) == ["shard-2"]
        assert "worker respawned" in w0.coverage.shard_gaps["shard-2"]

        # Exact conservation across the respawn: dropped/shed counters are
        # parent-side state and survive the worker loss to the byte.
        assert w0.host_dropped == sent_dropped
        assert w0.coverage.shed == {"h1": 5}

        health = pool.pool_health()
        assert health["alive"] == 4
        assert health["respawns"] == 1
        assert health["respawn_log"][0]["shard"] == 2

        # Post-respawn windows are whole: re-registration worked, every
        # event of window 1 is aggregated, coverage shows no gap.
        for host in ("h1", "h2"):
            pool.ingest(_batch(1, host, rid_base=120))
        (w1,) = pool.advance(121.5)
        assert w1.coverage.shard_gaps == {}
        assert sum(row[1] for row in w1.rows) == 120

        results = pool.finish("q1")
        assert results.total_host_dropped == sent_dropped
        assert results.total_host_shed == sent_shed


def test_sigkill_worker_mid_frame_ingest():
    """The zero-copy path must not weaken self-healing: a worker that was
    handed raw frame shards and then SIGKILLed yields the exact same
    shard-gap coverage and seen/dropped/shed conservation as the object
    path, and post-respawn frame ingest lands whole windows again."""
    registry = _registry()
    sent_dropped = sent_shed = 0
    with ShardPool(workers=4, grace_seconds=1.0) as pool:
        pool.register(
            _plan(registry).central_object,
            planned_hosts=2, targeted_hosts=2, targeted_names=("h1", "h2"),
        )
        for host, dropped, shed in (("h1", 3, 5), ("h2", 0, 0)):
            pool.ingest_frame(
                encode_full_batch(_batch(0, host, dropped=dropped, shed=shed))
            )
            sent_dropped += dropped
            sent_shed += shed

        dead_pid = sigkill_worker(pool, 2)
        assert dead_pid > 0

        # The next frame that touches shard 2 hits the dead pipe; the
        # supervisor respawns and the retried slice lands on the fresh
        # worker — the caller never sees the fault.
        pool.ingest_frame(encode_full_batch(_batch(0, "h1", rid_base=60,
                                                   dropped=1)))
        sent_dropped += 1
        (w0,) = pool.advance(61.5)

        assert w0.coverage is not None and w0.coverage.degraded
        assert list(w0.coverage.shard_gaps) == ["shard-2"]
        assert "worker respawned" in w0.coverage.shard_gaps["shard-2"]

        # Seen / dropped / shed are parent-side accounting extracted in
        # the same scan that sliced the frames; the kill cannot touch it.
        assert w0.host_dropped == sent_dropped
        assert w0.coverage.shed == {"h1": 5}

        health = pool.pool_health()
        assert health["alive"] == 4
        assert health["respawns"] == 1
        assert health["respawn_log"][0]["shard"] == 2

        # Post-respawn frames are whole: re-registration covered the new
        # worker, window 1 aggregates every event, no gap is reported.
        for host in ("h1", "h2"):
            pool.ingest_frame(encode_full_batch(_batch(1, host, rid_base=120)))
        (w1,) = pool.advance(121.5)
        assert w1.coverage.shard_gaps == {}
        assert sum(row[1] for row in w1.rows) == 120

        results = pool.finish("q1")
        assert results.total_host_dropped == sent_dropped
        assert results.total_host_shed == sent_shed


def test_sigkill_worker_mid_ring_ingest():
    """SIGKILL a worker holding **unacked in-flight ring descriptors**:
    the bytes sitting in its shared-memory ring die with it, and must be
    reported as ``shard_gaps`` degraded coverage exactly like the lost
    pipe slices — with exact seen/dropped/shed conservation, a fresh
    generation-tagged ring for the replacement (never a stale cursor),
    and the dead worker's segment unlinked, not leaked."""
    registry = _registry()
    sent_dropped = sent_shed = 0
    with ShardPool(workers=4, grace_seconds=1.0) as pool:
        if pool.pool_health()["transport"] != "shm":
            pytest.skip("shared-memory transport unavailable on this platform")
        pool.register(
            _plan(registry).central_object,
            planned_hosts=2, targeted_hosts=2, targeted_names=("h1", "h2"),
        )
        for host, dropped, shed in (("h1", 3, 5), ("h2", 0, 0)):
            pool.ingest_frame(
                encode_full_batch(_batch(0, host, dropped=dropped, shed=shed))
            )
            sent_dropped += dropped
            sent_shed += shed

        # Freeze shard 2, then keep ingesting: its descriptors pile up
        # reserved-but-unacked in the ring, provably in flight.
        old_ring_name = pool._workers[2].ring.name
        sigstop_worker(pool, 2)
        pool.ingest_frame(encode_full_batch(_batch(0, "h2", rid_base=200)))
        ring2 = pool.pool_health()["rings"][2]
        assert ring2["depth"] > 0
        assert ring2["descriptors"] > 0

        dead_pid = sigkill_worker(pool, 2)
        assert dead_pid > 0

        # The next slice for shard 2 hits the dead pipe mid-ring-ingest;
        # the supervisor respawns and the slice is re-shipped as pipe
        # bytes (a descriptor would point into the unlinked old ring).
        pool.ingest_frame(encode_full_batch(_batch(0, "h1", rid_base=60,
                                                   dropped=1)))
        sent_dropped += 1
        (w0,) = pool.advance(61.5)

        # The unacked in-flight descriptors are the lost slice: named
        # shard gap, same contract as the pipe-transport kill.
        assert w0.coverage is not None and w0.coverage.degraded
        assert list(w0.coverage.shard_gaps) == ["shard-2"]
        assert "worker respawned" in w0.coverage.shard_gaps["shard-2"]

        # Exact conservation: seen/dropped/shed live on the parent and
        # survive both the kill and the in-flight descriptor loss.
        assert w0.host_dropped == sent_dropped
        assert w0.coverage.shed == {"h1": 5}

        health = pool.pool_health()
        assert health["alive"] == 4
        assert health["respawns"] == 1
        assert health["respawn_log"][0]["shard"] == 2
        # The replacement rides a fresh generation-tagged ring; the dead
        # worker's segment is gone from the system, not leaked.
        ring2 = health["rings"][2]
        assert ring2["generation"] == 1
        assert ring2["transport"] == "shm"
        assert ring2["depth"] == 0
        with pytest.raises(RingUnavailable):
            ShmRing.attach(old_ring_name, generation=0)

        # Post-respawn windows are whole again, over the new ring.
        for host in ("h1", "h2"):
            pool.ingest_frame(encode_full_batch(_batch(1, host, rid_base=120)))
        (w1,) = pool.advance(121.5)
        assert w1.coverage.shard_gaps == {}
        assert sum(row[1] for row in w1.rows) == 120

        results = pool.finish("q1")
        assert results.total_host_dropped == sent_dropped
        assert results.total_host_shed == sent_shed


def test_parent_sigkill_orphans_exit_and_segments_are_reaped(tmp_path):
    """SIGKILL the *parent* mid-stream: the fork children inherit the
    parent end of their own pipes, so no EOF ever arrives — without the
    orphan heartbeat they would block in recv() forever, pinning their
    ring segments in /dev/shm.  The contract: workers notice the
    reparenting within the poll interval and exit, and their exit lets
    the resource tracker unlink every ring segment."""
    import json
    import os
    import signal
    import subprocess
    import sys
    import time

    if not os.path.isdir("/dev/shm"):
        pytest.skip("no /dev/shm to observe segment reaping on")

    script = tmp_path / "orphan_parent.py"
    script.write_text(
        """
import json, os, signal, sys
from repro.core.central.pool import ShardPool

pool = ShardPool(workers=2, grace_seconds=1.0)
health = pool.pool_health()
if health["transport"] != "shm":
    print(json.dumps({"skip": True}), flush=True)
    sys.exit(0)
print(json.dumps({
    "skip": False,
    "pids": [w.proc.pid for w in pool._workers],
    "rings": [w.ring.name for w in pool._workers],
}), flush=True)
signal.pause()  # parent waits here until the test SIGKILLs it
""",
        encoding="utf-8",
    )
    proc = subprocess.Popen(
        [sys.executable, str(script)],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
    )
    try:
        info = json.loads(proc.stdout.readline())
        if info["skip"]:
            pytest.skip("shared-memory transport unavailable on this platform")

        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=10)

        # Workers must notice the reparenting and exit on their own
        # (no one is left to close() their pipes), well within a few
        # heartbeat intervals.
        deadline = time.monotonic() + 15.0
        alive = set(info["pids"])
        while alive and time.monotonic() < deadline:
            for pid in list(alive):
                try:
                    os.kill(pid, 0)
                except ProcessLookupError:
                    alive.discard(pid)
            time.sleep(0.2)
        assert not alive, f"orphaned workers still running: {sorted(alive)}"

        # With every holder gone, the resource tracker unlinks the ring
        # segments (checked on the filesystem — an attach would pin and
        # re-register the segment with *this* process's tracker).
        deadline = time.monotonic() + 10.0
        leaked = {n for n in info["rings"]
                  if os.path.exists(f"/dev/shm/{n.lstrip('/')}")}
        while leaked and time.monotonic() < deadline:
            leaked = {n for n in leaked
                      if os.path.exists(f"/dev/shm/{n.lstrip('/')}")}
            time.sleep(0.2)
        assert not leaked, f"ring segments leaked after orphan exit: {sorted(leaked)}"
    finally:
        if proc.poll() is None:  # pragma: no cover - defensive teardown
            proc.kill()
            proc.wait(timeout=5)
        proc.stdout.close()


def test_sigstop_hung_worker_detected_and_sigcont_is_harmless():
    registry = _registry()
    with ShardPool(workers=4, grace_seconds=1.0, worker_timeout=0.5) as pool:
        pool.register(_plan(registry).central_object)
        pool.ingest(_batch(0, "h1"))
        sigstop_worker(pool, 1)

        # The frozen worker's pipe stays open, so only the close-reply
        # heartbeat can catch it: the parent waits worker_timeout, gives
        # up, respawns, and degrades coverage for the open window.
        (w0,) = pool.advance(61.5)
        assert "hung" in w0.coverage.shard_gaps["shard-1"]
        health = pool.pool_health()
        assert health["alive"] == 4 and health["respawns"] == 1

        # Thawing the replaced worker must be a no-op (the supervisor
        # already SIGKILLed the frozen pid; the helper swallows the race).
        sigcont_worker(pool, 1)

        pool.ingest(_batch(1, "h1", rid_base=60))
        (w1,) = pool.advance(121.5)
        assert w1.coverage is None
        assert sum(row[1] for row in w1.rows) == 60
        pool.finish("q1")
