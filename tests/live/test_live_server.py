"""ScrubDaemon over real TCP: registration, query lifecycle, routing
through the shard workers into the shared engine, and the reap tick."""

import time

import pytest

from repro.core.query.errors import ScrubError
from repro.live.client import ControlClient, LiveAgent, LiveAgentError

from .conftest import wait_for

QUERY = (
    "select pv.url, COUNT(*) from pv @[Service in Frontends] "
    "window 10s group by pv.url duration 600s;"
)

PV_FIELDS = [("url", "string"), ("latency_ms", "double")]


def _agent(harness, name: str, services=("Frontends",)) -> LiveAgent:
    agent = LiveAgent(
        harness.address, name, services=services, flush_batch_size=10
    )
    agent.define_event("pv", PV_FIELDS)
    agent.start()
    return agent


@pytest.fixture
def ctl(harness):
    client = ControlClient(harness.address)
    yield client
    client.close()


class TestLifecycle:
    def test_group_by_across_two_hosts(self, harness, ctl):
        a0 = _agent(harness, "web-0")
        a1 = _agent(harness, "web-1")
        try:
            handle = ctl.submit(QUERY)
            qid = handle["query_id"]
            assert qid == "q00001"
            assert sorted(handle["targeted_hosts"]) == ["web-0", "web-1"]
            assert wait_for(lambda: qid in a0.installed_query_ids)
            assert wait_for(lambda: qid in a1.installed_query_ids)

            # One shared timestamp → exactly one window holds everything.
            stamp = time.time()
            rid = 0
            for url, count in (("/a", 12), ("/b", 6)):
                for _ in range(count):
                    a0.log("pv", url=url, latency_ms=1.0, request_id=rid, timestamp=stamp)
                    rid += 1
            for _ in range(6):
                a1.log("pv", url="/a", latency_ms=2.0, request_id=rid, timestamp=stamp)
                rid += 1
            assert a0.drain(10.0) and a1.drain(10.0)

            results = ctl.finish(qid)
            assert results.query_id == qid
            assert len(results.windows) == 1
            window = results.windows[0]
            assert window.contributing_hosts == 2
            counts = {row[0]: row[1] for row in window.rows}
            assert counts == {"/a": 18, "/b": 6}
        finally:
            a0.close()
            a1.close()

    def test_poll_while_running_then_finish(self, harness, ctl):
        agent = _agent(harness, "web-0")
        try:
            qid = ctl.submit(QUERY)["query_id"]
            assert wait_for(lambda: qid in agent.installed_query_ids)
            agent.log("pv", url="/a", latency_ms=1.0, request_id=1)
            assert agent.drain(10.0)
            partial = ctl.poll(qid)
            assert partial.query_id == qid  # open windows not emitted yet
            final = ctl.finish(qid)
            assert sum(len(w.rows) for w in final.windows) == 1
            # Finishing twice returns the retained results, not an error.
            assert ctl.finish(qid) == final
        finally:
            agent.close()

    def test_query_reaped_after_span(self, harness, ctl):
        agent = _agent(harness, "web-0")
        try:
            qid = ctl.submit(
                "select pv.url, COUNT(*) from pv @[Service in Frontends] "
                "window 1s group by pv.url duration 1s;"
            )["query_id"]
            # The tick reaps it once wall time passes expiry + margin.
            assert wait_for(lambda: qid in ctl.stats()["finished"], timeout=10.0)
            assert qid not in ctl.stats()["running"]
            assert ctl.finish(qid).query_id == qid
        finally:
            agent.close()


class TestRejections:
    def test_unknown_query_id(self, harness, ctl):
        with pytest.raises(ScrubError, match="QueryNotFound"):
            ctl.poll("q99999")

    def test_no_matching_host(self, harness, ctl):
        agent = _agent(harness, "web-0")
        try:
            with pytest.raises(ScrubError, match="no registered host"):
                ctl.submit(
                    "select pv.url, COUNT(*) from pv @[Service in Backends] "
                    "window 10s group by pv.url duration 600s;"
                )
        finally:
            agent.close()

    def test_unknown_event_type(self, harness, ctl):
        with pytest.raises(ScrubError):
            ctl.submit("select COUNT(*) from nosuch duration 600s;")

    def test_newer_epoch_takes_over_stale_registration(self, harness):
        # A restarted process re-registers with a fresh (newer) epoch and
        # must take the name over; the stale session stands down instead
        # of fighting for it.
        first = LiveAgent(
            harness.address, "web-0", services=["Frontends"], reconnect=False
        )
        first.define_event("pv", PV_FIELDS)
        first.start()
        second = LiveAgent(
            harness.address, "web-0", services=["Frontends"], reconnect=False
        )
        second.define_event("pv", PV_FIELDS)
        try:
            second.start()  # succeeds: newer epoch supersedes
            assert second.epoch > first.epoch
            assert wait_for(lambda: first._superseded)
        finally:
            second.close()
            first.close()

    def test_stale_epoch_rejected_as_duplicate(self, harness):
        import socket as socket_mod

        from repro.live.protocol import (
            MsgType,
            decode_message,
            encode_message_frame,
            recv_frame,
        )

        first = _agent(harness, "web-0")
        try:
            # A hello carrying an *older* epoch is a zombie of a session
            # the daemon already superseded — refuse, don't evict.
            with socket_mod.create_connection(harness.address, timeout=5.0) as raw:
                raw.sendall(
                    encode_message_frame(
                        MsgType.AGENT_HELLO,
                        {
                            "host": "web-0",
                            "epoch": 0,
                            "services": ["Frontends"],
                            "datacenter": "dc1",
                            "schemas": [],
                        },
                    )
                )
                frame = recv_frame(raw)
                assert frame is not None
                msg_type, payload = frame
                assert msg_type == MsgType.ERROR
                message = decode_message(payload)
                assert message["error"] == "duplicate-host"
                assert "epoch" in message["message"]
        finally:
            first.close()

    def test_conflicting_schema_rejected(self, harness):
        first = _agent(harness, "web-0")
        other = LiveAgent(harness.address, "web-1", services=["Frontends"])
        other.define_event("pv", [("url", "long")])
        try:
            with pytest.raises(LiveAgentError):
                other.start()
        finally:
            other.close()
            first.close()


class TestStats:
    def test_stats_reflect_hosts_and_traffic(self, harness, ctl):
        agent = _agent(harness, "web-0")
        try:
            stats = ctl.stats()
            assert stats["shards"] == len(harness.daemon._shard_queues)
            assert [h["host"] for h in stats["hosts"]] == ["web-0"]
            assert stats["hosts"][0]["services"] == ["Frontends"]
            assert stats["uptime"] >= 0.0

            qid = ctl.submit(QUERY)["query_id"]
            assert qid in ctl.stats()["running"]
            assert wait_for(lambda: qid in agent.installed_query_ids)
            agent.log("pv", url="/a", latency_ms=1.0, request_id=1)
            assert agent.drain(10.0)
            stats = ctl.stats()
            assert stats["engine"]["events_received"] == 1
            assert stats["engine"]["batches_received"] >= 1
            ctl.finish(qid)
            assert qid in ctl.stats()["finished"]
        finally:
            agent.close()

    def test_agent_unregisters_on_disconnect(self, harness, ctl):
        agent = _agent(harness, "web-0")
        assert [h["host"] for h in ctl.stats()["hosts"]] == ["web-0"]
        agent.close()
        assert wait_for(lambda: not ctl.stats()["hosts"])
