"""QueryJournal: append/replay round trips, torn-tail tolerance, and the
sequence floor that keeps a recovered daemon from reusing query ids."""

import json

from repro.core.events import EventSchema
from repro.live.journal import QueryJournal, open_journal

PV = EventSchema("pv", [("url", "string"), ("latency_ms", "double")], doc="page view")


def _journal(tmp_path) -> QueryJournal:
    return QueryJournal(str(tmp_path / "scrubd.journal"))


class TestRoundTrip:
    def test_fresh_file_replays_empty(self, tmp_path):
        journal = _journal(tmp_path)
        assert journal.state.schemas == []
        assert journal.state.open_queries == {}
        assert journal.state.finished == set()
        assert journal.state.max_sequence == 0
        journal.close()

    def test_submit_then_reload_sees_open_query(self, tmp_path):
        journal = _journal(tmp_path)
        journal.record_schema(PV)
        journal.record_submit(
            "q00003", "select ...;", 10.0, 70.0,
            planned=("web-0", "web-1"), targeted=("web-0",),
        )
        journal.close()

        reloaded = QueryJournal(journal.path)
        assert [s.name for s in reloaded.state.schemas] == ["pv"]
        assert reloaded.state.schemas[0] == PV
        record = reloaded.state.open_queries["q00003"]
        assert record["query"] == "select ...;"
        assert record["targeted"] == ["web-0"]
        assert record["activates_at"] == 10.0
        assert reloaded.state.max_sequence == 3
        reloaded.close()

    def test_finish_closes_the_submit(self, tmp_path):
        journal = _journal(tmp_path)
        journal.record_submit("q00001", "a;", 0.0, 1.0, ("h",), ("h",))
        journal.record_submit("q00002", "b;", 0.0, 1.0, ("h",), ("h",))
        journal.record_finish("q00001")
        journal.close()

        reloaded = QueryJournal(journal.path)
        assert set(reloaded.state.open_queries) == {"q00002"}
        assert reloaded.state.finished == {"q00001"}
        # Finished ids still raise the sequence floor.
        assert reloaded.state.max_sequence == 2
        reloaded.close()

    def test_reopen_appends_not_truncates(self, tmp_path):
        journal = _journal(tmp_path)
        journal.record_submit("q00001", "a;", 0.0, 1.0, ("h",), ("h",))
        journal.close()
        again = QueryJournal(journal.path)
        again.record_finish("q00001")
        again.close()
        final = QueryJournal(journal.path)
        assert final.state.finished == {"q00001"}
        assert final.state.open_queries == {}
        final.close()


class TestRolloutRecords:
    def test_last_rollout_record_wins_on_replay(self, tmp_path):
        journal = _journal(tmp_path)
        journal.record_submit(
            "q00001", "a;", 0.0, 600.0,
            planned=("h0", "h1", "h2", "h3"), targeted=("h0", "h1", "h2", "h3"),
            rollout={"canary_hosts": 1, "widen_factor": 2.0, "bake_intervals": 2},
        )
        journal.record_rollout(
            "q00001", "canary", 0, ("h0", "h1", "h2", "h3"), ("h0",)
        )
        journal.record_rollout(
            "q00001", "widening", 1, ("h0", "h1", "h2", "h3"), ("h0", "h1")
        )
        journal.close()

        reloaded = QueryJournal(journal.path)
        record = reloaded.state.rollouts["q00001"]
        assert record["state"] == "widening"
        assert record["stage"] == 1
        assert record["installed"] == ["h0", "h1"]
        assert record["order"] == ["h0", "h1", "h2", "h3"]
        # The submit record still carries the policy for re-planning.
        submit = reloaded.state.open_queries["q00001"]
        assert submit["rollout"]["canary_hosts"] == 1
        reloaded.close()

    def test_abort_record_survives_replay(self, tmp_path):
        journal = _journal(tmp_path)
        journal.record_submit(
            "q00001", "a;", 0.0, 600.0, ("h0", "h1"), ("h0", "h1"),
            rollout={"canary_hosts": 1},
        )
        journal.record_rollout(
            "q00001", "aborted", 0, ("h0", "h1"), ("h0",),
            abort={"reason": "canary-quarantined", "host": "h0",
                   "detail": "impact-budget-exceeded: test", "stage": 0},
        )
        journal.close()

        reloaded = QueryJournal(journal.path)
        record = reloaded.state.rollouts["q00001"]
        assert record["state"] == "aborted"
        assert record["abort"]["reason"] == "canary-quarantined"
        assert record["abort"]["host"] == "h0"
        reloaded.close()

    def test_finish_clears_the_rollout_with_its_submit(self, tmp_path):
        journal = _journal(tmp_path)
        journal.record_submit(
            "q00001", "a;", 0.0, 1.0, ("h",), ("h",), rollout={"canary_hosts": 1},
        )
        journal.record_rollout("q00001", "complete", 1, ("h",), ("h",))
        journal.record_finish("q00001")
        journal.close()

        reloaded = QueryJournal(journal.path)
        assert reloaded.state.rollouts == {}
        assert reloaded.state.open_queries == {}
        assert reloaded.state.finished == {"q00001"}
        reloaded.close()

    def test_plain_submit_carries_no_rollout_key(self, tmp_path):
        journal = _journal(tmp_path)
        journal.record_submit("q00001", "a;", 0.0, 1.0, ("h",), ("h",))
        journal.close()
        reloaded = QueryJournal(journal.path)
        assert "rollout" not in reloaded.state.open_queries["q00001"]
        assert reloaded.state.rollouts == {}
        reloaded.close()


class TestCrashTolerance:
    def test_torn_trailing_record_is_dropped(self, tmp_path):
        journal = _journal(tmp_path)
        journal.record_submit("q00001", "a;", 0.0, 1.0, ("h",), ("h",))
        journal.close()
        # Simulate a crash mid-append: a half-written record at the tail.
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"op": "submit", "query_id": "q000')

        reloaded = QueryJournal(journal.path)
        assert set(reloaded.state.open_queries) == {"q00001"}
        assert reloaded.state.torn_records == 1
        reloaded.close()

    def test_torn_tail_is_truncated_so_recovery_appends_survive(self, tmp_path):
        # Crash 1 leaves a torn record; the recovered daemon journals
        # more work; crash 2 must replay *all* of it — the torn tail may
        # not swallow the first post-recovery append.
        journal = _journal(tmp_path)
        journal.record_submit("q00001", "a;", 0.0, 1.0, ("h",), ("h",))
        journal.close()
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"op": "submit", "query_id": "q000')

        recovered = QueryJournal(journal.path)  # recovery after crash 1
        assert recovered.state.torn_records == 1
        recovered.record_submit("q00002", "b;", 0.0, 1.0, ("h",), ("h",))
        recovered.record_finish("q00001")
        recovered.close()

        final = QueryJournal(journal.path)  # recovery after crash 2
        assert final.state.torn_records == 0
        assert set(final.state.open_queries) == {"q00002"}
        assert final.state.finished == {"q00001"}
        # The sequence floor must not regress: q00002 was issued.
        assert final.state.max_sequence == 2
        final.close()

    def test_decodable_fragment_without_newline_is_still_torn(self, tmp_path):
        # A crash can land exactly between the record bytes and the
        # newline; the fragment parses, but appending onto it would
        # corrupt the next record, so it counts as torn and is dropped.
        journal = _journal(tmp_path)
        journal.record_submit("q00001", "a;", 0.0, 1.0, ("h",), ("h",))
        journal.close()
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"op":"finish","query_id":"q00001"}')  # no \n

        recovered = QueryJournal(journal.path)
        assert recovered.state.torn_records == 1
        assert set(recovered.state.open_queries) == {"q00001"}
        recovered.record_finish("q00001")
        recovered.close()

        final = QueryJournal(journal.path)
        assert final.state.torn_records == 0
        assert final.state.finished == {"q00001"}
        assert final.state.open_queries == {}
        final.close()

    def test_magic_header_written_once(self, tmp_path):
        journal = _journal(tmp_path)
        journal.close()
        again = QueryJournal(journal.path)
        again.close()
        with open(journal.path, encoding="utf-8") as handle:
            records = [json.loads(line) for line in handle if line.strip()]
        assert records == [{"journal": "scrub-query-journal", "version": 1}]


def test_open_journal_propagates_none():
    assert open_journal(None) is None


class TestRatesRecords:
    def test_last_rates_record_wins_on_replay(self, tmp_path):
        journal = _journal(tmp_path)
        journal.record_submit("q00001", "a;", 0.0, 60.0, ("h",), ("h",))
        journal.record_rates("q00001", 1, 1.0, 0.7071, reason="relax")
        journal.record_rates("q00001", 2, 1.0, 0.5, reason="relax")
        journal.record_rates("q00001", 3, 1.0, 0.25, reason="clamp")
        journal.close()

        reloaded = QueryJournal(journal.path)
        record = reloaded.state.rates["q00001"]
        assert record["version"] == 3
        assert record["event_rate"] == 0.25
        assert record["reason"] == "clamp"
        reloaded.close()

    def test_finish_clears_the_rates_with_its_submit(self, tmp_path):
        journal = _journal(tmp_path)
        journal.record_submit("q00001", "a;", 0.0, 60.0, ("h",), ("h",))
        journal.record_rates("q00001", 1, 1.0, 0.5)
        journal.record_finish("q00001")
        journal.close()

        reloaded = QueryJournal(journal.path)
        assert reloaded.state.rates == {}
        assert reloaded.state.finished == {"q00001"}
        reloaded.close()

    def test_torn_rates_append_replays_previous_version(self, tmp_path):
        # A SIGKILL mid-append must recover to the last *journalled*
        # retune, never a half-written one.
        journal = _journal(tmp_path)
        journal.record_submit("q00001", "a;", 0.0, 60.0, ("h",), ("h",))
        journal.record_rates("q00001", 1, 1.0, 0.7071)
        journal.close()
        with open(journal.path, "a", encoding="utf-8") as f:
            f.write('{"op":"rates","query_id":"q00001","version":2,"ev')

        reloaded = QueryJournal(journal.path)
        assert reloaded.state.torn_records == 1
        assert reloaded.state.rates["q00001"]["version"] == 1
        reloaded.close()
