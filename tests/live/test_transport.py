"""SocketTransport: drop-not-block when central is gone, loss carry onto
the next delivered batch, and honest shipping against a live sink."""

import socket
import threading
import time

from repro.core.agent.transport import EventBatch, decode_full_batch
from repro.core.events import Event
from repro.live.protocol import MsgType, decode_message, encode_message_frame, recv_frame
from repro.live.transport import SocketTransport


def _dead_address() -> tuple[str, int]:
    """A localhost port that nothing is listening on."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return ("127.0.0.1", port)


def _batch(n_events: int = 2, seen: int = 1) -> EventBatch:
    return EventBatch(
        host="h1",
        query_id="q00001",
        events=[Event("pv", {"url": "/x"}, i, 1.0, "h1") for i in range(n_events)],
        seen_counts={("pv", 0): seen},
    )


def _fast_transport(address, **kwargs) -> SocketTransport:
    kwargs.setdefault("connect_timeout", 0.2)
    kwargs.setdefault("backoff_base", 0.01)
    kwargs.setdefault("backoff_cap", 0.05)
    return SocketTransport(address, "h1", **kwargs)


class _Sink:
    """A minimal scrubd stand-in: reads frames, answers PING with PONG."""

    def __init__(self) -> None:
        self.listener = socket.socket()
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(4)
        self.address = self.listener.getsockname()
        self.batches: list[EventBatch] = []
        self.hellos: list[dict] = []
        self.conns: list[socket.socket] = []
        self._thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._thread.start()

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _addr = self.listener.accept()
            except OSError:
                return
            self.conns.append(conn)
            threading.Thread(target=self._serve, args=(conn,), daemon=True).start()

    def _serve(self, conn: socket.socket) -> None:
        try:
            while True:
                frame = recv_frame(conn)
                if frame is None:
                    return
                msg_type, payload = frame
                if msg_type == MsgType.DATA_HELLO:
                    self.hellos.append(decode_message(payload))
                elif msg_type == MsgType.BATCH:
                    self.batches.append(decode_full_batch(payload))
                elif msg_type == MsgType.PING:
                    conn.sendall(
                        encode_message_frame(MsgType.PONG, decode_message(payload))
                    )
        except OSError:
            return
        finally:
            conn.close()

    def close(self) -> None:
        self.listener.close()


class TestCentralDown:
    def test_send_never_blocks_and_drops_are_monotonic(self):
        transport = _fast_transport(_dead_address(), outbox_capacity=8)
        try:
            previous = 0
            for _ in range(120):
                started = time.perf_counter()
                transport.send(_batch())
                assert time.perf_counter() - started < 0.5
                assert transport.dropped_events >= previous
                previous = transport.dropped_events
                assert transport.outbox_depth <= 8
            assert transport.dropped_batches > 0
            assert transport.dropped_events > 0
            assert not transport.connected
        finally:
            transport.close()

    def test_drain_reports_failure(self):
        transport = _fast_transport(_dead_address(), outbox_capacity=4)
        try:
            transport.send(_batch())
            assert transport.drain(timeout=2.0) is False
        finally:
            transport.close()

    def test_loss_is_carried_onto_next_batch(self):
        transport = _fast_transport(_dead_address(), outbox_capacity=1)
        try:
            for _ in range(30):
                transport.send(_batch(n_events=2, seen=1))
            assert transport.dropped_batches >= 1
            carried = EventBatch(host="h1", query_id="q00001", events=[])
            transport.send(carried)
            # The producer folded the accumulated loss into this batch
            # before enqueueing it: dropped events and their matched
            # counts both ride forward.
            assert carried.dropped >= 2
            assert carried.seen_counts.get(("pv", 0), 0) >= 1
        finally:
            transport.close()


class TestLossCarryConservation:
    """The carry is shared between the producer (send() folds it into the
    next batch) and the flusher (_carry_loss after a failed ship).  The
    estimator's honesty rests on conservation: every lost event and every
    matched count ends up either on a delivered batch or still in the
    carry — interleaving must never *lose* any."""

    def _quiesced_transport(self) -> SocketTransport:
        # Stop the flusher so the outbox only fills (huge capacity: no
        # producer-side drops); the test then plays both roles itself.
        transport = _fast_transport(_dead_address(), outbox_capacity=100_000)
        transport._stop.set()
        transport._thread.join(timeout=5.0)
        assert not transport._thread.is_alive()
        return transport

    def test_interleaved_flusher_loss_and_producer_fold(self):
        transport = self._quiesced_transport()
        rounds, events_per_loss = 400, 3
        enqueued: list[EventBatch] = []
        start = threading.Barrier(3)

        def flusher_side():
            start.wait()
            for _ in range(rounds):
                transport._carry_loss(_batch(n_events=events_per_loss, seen=1))

        def producer_side():
            start.wait()
            for _ in range(rounds):
                batch = EventBatch(host="h1", query_id="q00001", events=[])
                transport.send(batch)
                enqueued.append(batch)

        threads = [
            threading.Thread(target=flusher_side),
            threading.Thread(target=producer_side),
        ]
        for t in threads:
            t.start()
        start.wait()
        for t in threads:
            t.join(timeout=30.0)
            assert not t.is_alive()

        total_lost = rounds * events_per_loss
        folded = sum(b.dropped for b in enqueued)
        assert folded + transport._carry_dropped == total_lost
        folded_seen = sum(b.seen_counts.get(("pv", 0), 0) for b in enqueued)
        assert folded_seen + transport._carry_seen.get(("pv", 0), 0) == rounds
        transport.close()

    def test_two_producers_race_the_fold(self):
        # Two application threads logging concurrently while the flusher
        # records losses: counts still conserve exactly.
        transport = self._quiesced_transport()
        rounds = 300
        lock = threading.Lock()
        enqueued: list[EventBatch] = []
        start = threading.Barrier(4)

        def flusher_side():
            start.wait()
            for _ in range(rounds):
                transport._carry_loss(_batch(n_events=2, seen=1))

        def producer_side():
            start.wait()
            for _ in range(rounds):
                batch = EventBatch(host="h1", query_id="q00001", events=[])
                transport.send(batch)
                with lock:
                    enqueued.append(batch)

        threads = [threading.Thread(target=flusher_side)] + [
            threading.Thread(target=producer_side) for _ in range(2)
        ]
        for t in threads:
            t.start()
        start.wait()
        for t in threads:
            t.join(timeout=30.0)
            assert not t.is_alive()

        folded = sum(b.dropped for b in enqueued)
        assert folded + transport._carry_dropped == rounds * 2
        folded_seen = sum(b.seen_counts.get(("pv", 0), 0) for b in enqueued)
        assert folded_seen + transport._carry_seen.get(("pv", 0), 0) == rounds
        transport.close()


class TestLiveLink:
    def test_ships_and_drains(self):
        sink = _Sink()
        transport = _fast_transport(sink.address)
        try:
            sent = [_batch(n_events=1), _batch(n_events=3)]
            for batch in sent:
                transport.send(batch)
            assert transport.drain(timeout=5.0) is True
            assert [b.events for b in sink.batches] == [b.events for b in sent]
            assert sink.hellos == [{"host": "h1"}]
            assert transport.batches_sent == 2
            assert transport.bytes_sent > sum(b.wire_size() for b in sent)
            assert transport.dropped_events == 0
            assert transport.connected
        finally:
            transport.close()
            sink.close()

    def test_stale_pong_does_not_complete_drain(self):
        # A PONG for an *earlier* drain (timed out, or replayed over a
        # flaky link) proves nothing about frames sent since; the drain
        # barrier must wait for the PONG echoing its own token.
        class _StaleSink(_Sink):
            def _serve(self, conn):
                try:
                    while True:
                        frame = recv_frame(conn)
                        if frame is None:
                            return
                        msg_type, payload = frame
                        if msg_type == MsgType.DATA_HELLO:
                            self.hellos.append(decode_message(payload))
                        elif msg_type == MsgType.PING:
                            token = decode_message(payload)["token"]
                            # First a stale PONG, then the real one.
                            conn.sendall(
                                encode_message_frame(
                                    MsgType.PONG, {"token": token - 1}
                                )
                            )
                            conn.sendall(
                                encode_message_frame(MsgType.PONG, {"token": token})
                            )
                except OSError:
                    return
                finally:
                    conn.close()

        sink = _StaleSink()
        transport = _fast_transport(sink.address)
        try:
            assert transport.drain(timeout=5.0) is True
        finally:
            transport.close()
            sink.close()

        class _OnlyStaleSink(_Sink):
            def _serve(self, conn):
                try:
                    while True:
                        frame = recv_frame(conn)
                        if frame is None:
                            return
                        msg_type, payload = frame
                        if msg_type == MsgType.PING:
                            token = decode_message(payload)["token"]
                            conn.sendall(
                                encode_message_frame(
                                    MsgType.PONG, {"token": token + 17}
                                )
                            )
                except OSError:
                    return
                finally:
                    conn.close()

        sink = _OnlyStaleSink()
        transport = _fast_transport(sink.address, io_timeout=0.5)
        try:
            # Never answered with our token: the drain must fail, not
            # accept the impostor.
            assert transport.drain(timeout=5.0) is False
        finally:
            transport.close()
            sink.close()

    def test_reconnects_after_link_drop(self):
        sink = _Sink()
        transport = _fast_transport(sink.address)
        try:
            transport.send(_batch())
            assert transport.drain(timeout=5.0) is True
            first_reconnects = transport.reconnects
            assert first_reconnects == 1
            for conn in sink.conns:  # the link dies under the flusher
                conn.close()
            # The next ships fail once, then the flusher redials the same
            # listener and re-announces itself with a fresh DATA_HELLO.
            deadline = time.time() + 5.0
            while len(sink.hellos) < 2 and time.time() < deadline:
                transport.send(_batch())
                transport.drain(timeout=1.0)
            assert len(sink.hellos) >= 2, "transport never re-registered"
            assert sink.hellos[-1] == {"host": "h1"}
            assert transport.reconnects > first_reconnects
        finally:
            transport.close()
            sink.close()
