"""Fault tolerance at the daemon level: liveness leases, epoch takeover
with install replay, SYNC reconciliation, push-failure accounting, and
degraded-window coverage."""

import socket
import threading
import time

import pytest

from repro.live.client import ControlClient, LiveAgent, LiveAgentError
from repro.live.protocol import (
    MsgType,
    decode_message,
    encode_message_frame,
    recv_frame,
)
from repro.live.server import _AgentConn

from .conftest import DaemonHarness, wait_for

QUERY = (
    "select pv.url, COUNT(*) from pv @[Service in Frontends] "
    "window 10s group by pv.url duration 600s;"
)

PV_FIELDS = [("url", "string"), ("latency_ms", "double")]

PV_SCHEMA_PAYLOAD = {
    "name": "pv",
    "fields": [["url", "string"], ["latency_ms", "double"]],
    "doc": "",
}


@pytest.fixture
def fast_harness():
    h = DaemonHarness(lease_seconds=0.6, tick_interval=0.05).start()
    yield h
    h.stop()


@pytest.fixture
def ctl(fast_harness):
    client = ControlClient(fast_harness.address)
    yield client
    client.close()


def _agent(harness, name, **kwargs) -> LiveAgent:
    kwargs.setdefault("services", ["Frontends"])
    kwargs.setdefault("heartbeat_interval", 0.1)
    kwargs.setdefault("reconnect_backoff_base", 0.05)
    agent = LiveAgent(harness.address, name, **kwargs)
    agent.define_event("pv", PV_FIELDS)
    agent.start()
    return agent


def _raw_register(address, name, epoch=1) -> socket.socket:
    """Register a host the hard way: a socket that will never heartbeat."""
    sock = socket.create_connection(address, timeout=5.0)
    sock.settimeout(5.0)
    sock.sendall(
        encode_message_frame(
            MsgType.AGENT_HELLO,
            {
                "host": name,
                "epoch": epoch,
                "services": ["Frontends"],
                "datacenter": "dc1",
                "schemas": [PV_SCHEMA_PAYLOAD],
            },
        )
    )
    frame = recv_frame(sock)
    assert frame is not None and frame[0] == MsgType.HELLO_OK
    frame = recv_frame(sock)  # the post-hello reconciliation SYNC
    assert frame is not None and frame[0] == MsgType.SYNC
    return sock


class TestLeases:
    def test_heartbeats_keep_the_lease_alive(self, fast_harness, ctl):
        agent = _agent(fast_harness, "web-0")
        try:
            time.sleep(3 * 0.6)  # several lease windows
            stats = ctl.stats()
            assert [h["host"] for h in stats["hosts"]] == ["web-0"]
            assert stats["hosts"][0]["lease_age"] < 0.6
            assert agent.control_reconnects == 0
            assert agent.heartbeats_sent >= 3
        finally:
            agent.close()

    def test_heartbeat_surfaces_query_costs(self, fast_harness, ctl):
        """Heartbeats carry the agent's per-query armed-cost counters;
        scrubd keeps the latest snapshot per host and reports it in
        STATS so operators can see what each live query costs where."""
        agent = _agent(fast_harness, "web-0")
        try:
            qid = ctl.submit(QUERY)["query_id"]
            assert wait_for(lambda: qid in agent.installed_query_ids)
            for i in range(40):
                agent.log("pv", {"url": "/a", "latency_ms": 1.0}, request_id=i)

            def costs():
                hosts = ctl.stats()["hosts"]
                if not hosts:
                    return None
                return hosts[0]["query_costs"].get(qid)

            assert wait_for(lambda: (costs() or {}).get("routed", 0) >= 40, timeout=5.0)
            cost = costs()
            assert cost["skipped"] >= 0
            assert cost["ewma_ns"] >= 0.0
        finally:
            agent.close()

    def test_silent_agent_lease_expires(self, fast_harness, ctl):
        sock = _raw_register(fast_harness.address, "raw-0")
        try:
            qid = ctl.submit(QUERY)["query_id"]
            frame = recv_frame(sock)  # the INSTALL push
            assert frame is not None and frame[0] == MsgType.INSTALL

            # Never heartbeat: the daemon must expire the lease, evict the
            # registration, and say why with a structured ERROR.
            assert wait_for(lambda: not ctl.stats()["hosts"], timeout=5.0)
            saw_error = None
            while True:
                frame = recv_frame(sock)
                if frame is None:
                    break
                if frame[0] == MsgType.ERROR:
                    saw_error = decode_message(frame[1])
                    break
            assert saw_error is not None
            assert saw_error["error"] == "lease-expired"

            delivery = ctl.stats()["queries"][qid]["delivery"]
            assert delivery["raw-0"] == "lease-expired"
        finally:
            sock.close()


class TestReconnect:
    def test_restarted_agent_gets_installs_replayed(self, fast_harness, ctl):
        first = _agent(fast_harness, "web-0", reconnect=False)
        qid = ctl.submit(QUERY)["query_id"]
        assert wait_for(lambda: qid in first.installed_query_ids)

        # A "restarted process": same host name, fresh epoch.  It must
        # take the registration over and receive the open span again.
        second = _agent(fast_harness, "web-0", reconnect=False)
        try:
            assert wait_for(lambda: qid in second.installed_query_ids)
            assert wait_for(lambda: first._superseded)
            delivery = ctl.stats()["queries"][qid]["delivery"]
            assert delivery["web-0"] == "connected"
        finally:
            second.close()
            first.close()

    def test_agent_redials_and_reinstalls_after_link_loss(self, fast_harness, ctl):
        agent = _agent(fast_harness, "web-0")
        try:
            qid = ctl.submit(QUERY)["query_id"]
            assert wait_for(lambda: qid in agent.installed_query_ids)

            control = agent._control
            control.shutdown(socket.SHUT_RDWR)  # the network blips

            assert wait_for(lambda: agent.control_reconnects >= 1, timeout=5.0)
            assert wait_for(
                lambda: any(
                    h["host"] == "web-0" for h in ctl.stats()["hosts"]
                ),
                timeout=5.0,
            )
            assert qid in agent.installed_query_ids
            assert not agent._superseded
        finally:
            agent.close()

    def test_sync_uninstalls_queries_finished_while_disconnected(
        self, fast_harness, ctl, monkeypatch
    ):
        # The uninstall push is lost while the agent is away; the SYNC it
        # receives on re-registration must reconcile the stale span away.
        agent = _agent(fast_harness, "web-0")
        try:
            qid = ctl.submit(QUERY)["query_id"]
            assert wait_for(lambda: qid in agent.installed_query_ids)

            # Hold the redial until the span has finished, so the agent
            # is deterministically away when the UNINSTALL would push.
            gate = threading.Event()
            real_connect = agent._connect_control

            def gated_connect():
                assert gate.wait(10.0)
                return real_connect()

            monkeypatch.setattr(agent, "_connect_control", gated_connect)
            agent._control.shutdown(socket.SHUT_RDWR)

            assert wait_for(lambda: not ctl.stats()["hosts"], timeout=5.0)
            ctl.finish(qid)  # nobody to push UNINSTALL to
            gate.set()

            assert wait_for(
                lambda: qid not in agent.installed_query_ids, timeout=5.0
            )
            assert agent.control_reconnects >= 1
        finally:
            agent.close()


class TestPushFailures:
    def test_failed_install_push_is_counted_not_fatal(
        self, fast_harness, ctl, monkeypatch
    ):
        agent = _agent(fast_harness, "web-0", reconnect=False)
        try:
            # Registration used the real push; now every push blows up the
            # way a dead asyncio transport does.
            async def boom(self, msg_type, message):
                raise RuntimeError("injected: transport is closed")

            monkeypatch.setattr(_AgentConn, "push", boom)

            handle = ctl.submit(QUERY)
            assert handle["install_failures"] == ["web-0"]
            stats = ctl.stats()
            assert stats["push_failures"] == 1
            assert (
                stats["queries"][handle["query_id"]]["delivery"]["web-0"]
                == "unreachable"
            )
            # The dead session was evicted so a restart can re-register.
            assert wait_for(lambda: not ctl.stats()["hosts"])
        finally:
            agent.close()

    def test_sync_push_failure_on_reconnect_keeps_handler_alive(
        self, fast_harness, ctl, monkeypatch
    ):
        # An install replay that dies with RuntimeError (asyncio's "the
        # transport is closed") must fall through to the normal read
        # loop, not escape the handler and strand the registration.
        agent = _agent(fast_harness, "web-0")
        try:
            qid = ctl.submit(QUERY)["query_id"]
            assert wait_for(lambda: qid in agent.installed_query_ids)

            async def boom(self, msg_type, message):
                raise RuntimeError("injected: transport is closed")

            monkeypatch.setattr(_AgentConn, "push", boom)
            agent._control.shutdown(socket.SHUT_RDWR)  # force re-register

            assert wait_for(
                lambda: ctl.stats()["push_failures"] >= 1, timeout=5.0
            )
            # The handler survived the failed replay: its read loop keeps
            # renewing the lease from heartbeats well past the window,
            # and the delivery gap is recorded on the query.
            time.sleep(3 * 0.6)
            stats = ctl.stats()
            assert [h["host"] for h in stats["hosts"]] == ["web-0"]
            assert stats["queries"][qid]["delivery"]["web-0"] == "unreachable"
        finally:
            agent.close()
        # Disconnect cleanup still runs for the failed session.
        assert wait_for(lambda: not ctl.stats()["hosts"])


class TestPermanentRejection:
    def test_schema_conflict_on_redial_is_fatal_not_retried(
        self, fast_harness, monkeypatch
    ):
        agent = _agent(fast_harness, "web-0")
        try:

            def reject():
                raise LiveAgentError(
                    "scrubd rejected agent 'web-0': pv conflicts",
                    reason="schema-conflict",
                )

            monkeypatch.setattr(agent, "_connect_control", reject)
            agent._control.shutdown(socket.SHUT_RDWR)  # force a redial

            assert wait_for(lambda: agent.fatal_error is not None, timeout=5.0)
            assert agent.fatal_error.reason == "schema-conflict"
            # The control loop stood down instead of hammering scrubd
            # with doomed re-registrations forever.
            agent._reader.join(timeout=2.0)
            assert not agent._reader.is_alive()
            assert agent.control_reconnects == 0
        finally:
            agent.close()

    def test_connection_blips_still_retry(self, fast_harness):
        # The fatal path must not creep into transient failures: a plain
        # link loss keeps the existing redial-and-reinstall behaviour.
        agent = _agent(fast_harness, "web-0")
        try:
            agent._control.shutdown(socket.SHUT_RDWR)
            assert wait_for(lambda: agent.control_reconnects >= 1, timeout=5.0)
            assert agent.fatal_error is None
        finally:
            agent.close()


class TestCoverage:
    def test_degraded_window_names_the_missing_host(self, fast_harness, ctl):
        a0 = _agent(fast_harness, "web-0")
        a1 = _agent(fast_harness, "web-1")
        qid = ctl.submit(QUERY)["query_id"]
        assert wait_for(lambda: qid in a0.installed_query_ids)
        assert wait_for(lambda: qid in a1.installed_query_ids)

        t0 = time.time()
        rid = 0
        for _ in range(4):
            a0.log("pv", url="/a", latency_ms=1.0, request_id=rid, timestamp=t0)
            rid += 1
            a1.log("pv", url="/a", latency_ms=1.0, request_id=rid, timestamp=t0)
            rid += 1
        assert a0.drain(10.0) and a1.drain(10.0)

        a1.close()  # web-1 goes away mid-span
        assert wait_for(
            lambda: [h["host"] for h in ctl.stats()["hosts"]] == ["web-0"]
        )
        # web-0 alone reports into a later window.
        for _ in range(4):
            a0.log("pv", url="/a", latency_ms=1.0, request_id=rid, timestamp=t0 + 15)
            rid += 1
        assert a0.drain(10.0)

        results = ctl.finish(qid)
        a0.close()
        windows = sorted(results.windows, key=lambda w: w.window_start)
        assert len(windows) == 2
        full, degraded = windows
        assert full.coverage is not None and not full.coverage.degraded
        assert sorted(full.coverage.reporting) == ["web-0", "web-1"]
        assert degraded.degraded
        assert degraded.coverage.reporting == ("web-0",)
        assert degraded.coverage.missing == {"web-1": "disconnected"}
        assert results.degraded_windows == [degraded]
        summary = results.coverage_summary()
        assert summary["degraded_windows"] == 1
