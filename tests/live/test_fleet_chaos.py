"""Fleet rollout under faults: SIGKILL scrubd mid-widen and recover the
exact journalled stage with install-count conservation; churn the fleet
mid-rollout and complete over the hosts that still exist."""

from __future__ import annotations

import json
import os
import re
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.live.client import ControlClient, LiveAgent

from .conftest import DaemonHarness, wait_for

pytestmark = pytest.mark.chaos

REPO_ROOT = Path(__file__).resolve().parents[2]

PV_FIELDS = [("url", "string"), ("latency_ms", "double")]

QUERY = (
    "select pv.url, COUNT(*) from pv @[Service in Frontends] "
    "window 10s group by pv.url duration 600s;"
)

#: Fast ticks so rollout stages advance quickly; a 2s lease keeps the
#: agents' registrations alive across the daemon kill + redial window.
SCRUBD_ARGS = (
    "--tick", "0.05", "--grace", "1.0", "--lease", "2.0", "--shards", "2"
)


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["PYTHONUNBUFFERED"] = "1"
    return env


def _spawn_scrubd(*extra_args: str) -> tuple[subprocess.Popen, int]:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.live.server", *extra_args],
        cwd=REPO_ROOT,
        env=_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    assert proc.stdout is not None
    seen = []
    while True:
        line = proc.stdout.readline()
        if not line:
            raise AssertionError(f"scrubd exited before its banner:\n{''.join(seen)}")
        seen.append(line)
        match = re.search(r"listening on 127\.0\.0\.1:(\d+)", line)
        if match:
            return proc, int(match.group(1))


def _stop(proc: subprocess.Popen) -> None:
    if proc.poll() is None:
        proc.kill()
    proc.wait(timeout=10.0)
    if proc.stdout is not None:
        proc.stdout.close()


def _free_port() -> int:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def _agent(port: int, name: str, **kwargs) -> LiveAgent:
    kwargs.setdefault("services", ["Frontends"])
    kwargs.setdefault("heartbeat_interval", 0.1)
    kwargs.setdefault("reconnect_backoff_base", 0.05)
    agent = LiveAgent(("127.0.0.1", port), name, **kwargs)
    agent.define_event("pv", PV_FIELDS)
    agent.start()
    return agent


def _last_rollout_record(journal: str, query_id: str) -> dict:
    """The journal's final rollout transition for *query_id* — by the
    last-record-wins replay rule, exactly what a recovered daemon must
    resume into."""
    last = None
    with open(journal, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("op") == "rollout" and record.get("query_id") == query_id:
                last = record
    assert last is not None, "no rollout record ever journalled"
    return last


def test_sigkill_mid_widen_recovers_journalled_stage_and_conserves_installs(
    tmp_path,
):
    """The chaos acceptance story: SIGKILL scrubd in the middle of a
    widening rollout; the journalled restart resumes the *same* stage
    with the *same* installed set (no host installed twice, none
    skipped), then completes — every agent saw exactly one effective
    install across the whole crash."""
    port = _free_port()
    journal = str(tmp_path / "scrubd.journal")
    daemon, _ = _spawn_scrubd(
        "--port", str(port), "--journal", journal, *SCRUBD_ARGS
    )
    agents: list[LiveAgent] = []
    ctl = ControlClient(("127.0.0.1", port))
    daemon2 = None
    try:
        agents = [_agent(port, f"web-{i}") for i in range(6)]
        assert wait_for(
            lambda: len(ctl.stats()["hosts"]) == 6, timeout=10.0
        )

        handle = ctl.submit(
            QUERY,
            rollout={"canary_hosts": 1, "widen_factor": 2.0,
                     "bake_intervals": 8},  # 0.4s of bake per stage
        )
        qid = handle["query_id"]
        assert len(handle["rollout"]["installed"]) == 1

        # Let the rollout widen at least once, then kill mid-flight
        # before it covers the fleet.
        def mid_widen():
            ro = ctl.stats()["rollouts"].get(qid)
            return (
                ro is not None
                and ro["state"] == "widening"
                and len(ro["installed"]) < 6
            )

        assert wait_for(mid_widen, timeout=10.0), "rollout never started widening"
        ctl.close()
        _stop(daemon)  # SIGKILL: no shutdown path, no final journal append

        # The ground truth is the journal, not a racy pre-kill snapshot.
        checkpoint = _last_rollout_record(journal, qid)
        assert checkpoint["state"] in ("canary", "widening")
        assert checkpoint["stage"] >= 1
        assert 0 < len(checkpoint["installed"]) < 6

        daemon2, _ = _spawn_scrubd(
            "--port", str(port), "--journal", journal, *SCRUBD_ARGS
        )
        ctl2 = ControlClient(("127.0.0.1", port))

        # Recovery resumes the exact journalled stage and placement.
        resumed = ctl2.stats()["rollouts"][qid]
        assert resumed["state"] == checkpoint["state"]
        assert resumed["stage"] == checkpoint["stage"]
        assert resumed["installed"] == checkpoint["installed"]
        assert resumed["order"] == checkpoint["order"]

        # Agents redial on their own; once the installed canaries are
        # back the bake resumes and the rollout runs to completion.
        assert wait_for(
            lambda: all(a.control_reconnects >= 1 for a in agents),
            timeout=15.0,
        )
        assert wait_for(
            lambda: ctl2.stats()["rollouts"][qid]["state"] == "complete",
            timeout=15.0,
        )
        final = ctl2.stats()["rollouts"][qid]
        assert sorted(final["installed"]) == [f"web-{i}" for i in range(6)]
        assert final["stage"] >= checkpoint["stage"]

        for agent in agents:
            assert wait_for(lambda a=agent: qid in a.installed_query_ids)
        # Exact install conservation across the crash: reconnect replays
        # of an already-armed query are deduplicated, so every host
        # counts precisely one effective install.
        assert [a.installs_applied for a in agents] == [1] * 6
        ctl2.close()
    finally:
        for agent in agents:
            agent.close()
        if daemon2 is not None:
            _stop(daemon2)
        _stop(daemon)


def test_agent_churn_mid_rollout_retires_aged_out_host_and_completes():
    """A pending (not yet installed) host dies mid-rollout and ages out
    of the fleet; the rollout must retire it from the rank order and
    complete over the hosts that still exist, instead of waiting forever
    for a ghost."""
    harness = DaemonHarness(lease_seconds=0.4, tick_interval=0.05).start()
    ctl = ControlClient(harness.address)
    agents = {}
    try:
        for i in range(6):
            name = f"churn-{i}"
            agent = LiveAgent(
                harness.address, name, services=["Frontends"],
                heartbeat_interval=0.1, reconnect=False,
            )
            agent.define_event("pv", PV_FIELDS)
            agent.start()
            agents[name] = agent

        handle = ctl.submit(
            QUERY,
            rollout={"canary_hosts": 1, "widen_factor": 2.0,
                     "bake_intervals": 12},  # 0.6s/stage: slower than age-out
        )
        qid = handle["query_id"]
        order = handle["rollout"]["order"]
        # Kill the lowest-ranked host — widening reaches it last, so it
        # ages out (0.8s: 2x the 0.4s lease) well before its slot comes.
        victim = order[-1]
        agents[victim].close()

        def fleet_state(name):
            rows = {r["host"]: r for r in ctl.stats()["fleet"]}
            return rows.get(name, {}).get("state")

        assert wait_for(lambda: fleet_state(victim) == "stale", timeout=5.0)
        assert wait_for(
            lambda: ctl.stats()["rollouts"][qid]["state"] == "complete",
            timeout=15.0,
        )

        final = ctl.stats()["rollouts"][qid]
        survivors = [name for name in order if name != victim]
        assert final["order"] == survivors      # the ghost was retired
        assert final["installed"] == survivors  # everyone else runs it
        for name in survivors:
            assert qid in agents[name].installed_query_ids
            assert agents[name].installs_applied == 1
        assert agents[victim].installs_applied == 0
    finally:
        for agent in agents.values():
            agent.close()
        ctl.close()
        harness.stop()
