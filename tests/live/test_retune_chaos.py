"""Crash chaos for the closed-loop sampling retune path.

Two recovery invariants, both resting on journal-before-fan-out plus the
agents' version compare:

* a scrubd killed *mid-retune* (the rates record hit the journal, the
  INSTALL fan-out did not) recovers with exactly the journalled rate
  version and replays it to re-attaching agents — the fleet converges to
  the version the journal names, never a half-applied mix;
* an agent that restarts mid-query converges back to the controller's
  current rate version through the ordinary INSTALL replay, with no
  dedicated retune-recovery machinery.
"""

import asyncio

import pytest

from repro.live.client import ControlClient, LiveAgent

from .conftest import DaemonHarness, wait_for

pytestmark = pytest.mark.chaos

TARGET_QUERY = (
    "select COUNT(*) from pv @[Service in Frontends] "
    "window 5s duration 600s target ci 10%;"
)

PV_FIELDS = [("url", "string"), ("latency_ms", "double")]


def _agent(harness, name, **kwargs) -> LiveAgent:
    kwargs.setdefault("services", ["Frontends"])
    kwargs.setdefault("heartbeat_interval", 0.1)
    kwargs.setdefault("reconnect_backoff_base", 0.05)
    agent = LiveAgent(harness.address, name, **kwargs)
    agent.define_event("pv", PV_FIELDS)
    agent.start()
    return agent


def _push_retune(harness, query_id, event_rate, reason="relax"):
    """Issue one retune through the daemon's real apply path (journal
    first, then INSTALL fan-out), exactly as the controller tick would."""
    live = harness.daemon._running[query_id]
    update = live.controller._issue(0.0, live.controller.host_count, event_rate, reason)
    asyncio.run_coroutine_threadsafe(
        harness.daemon._apply_rates(query_id, live, update), harness.loop
    ).result(timeout=5.0)
    return update


class TestDaemonKilledMidRetune:
    def test_journalled_rate_version_replays_exactly(self, tmp_path):
        journal = str(tmp_path / "scrubd.journal")
        h1 = DaemonHarness(journal_path=journal).start()
        agent = _agent(h1, "web-0")
        ctl = ControlClient(h1.address)
        try:
            assert wait_for(lambda: len(h1.daemon.fleet.live()) == 1)
            query_id = ctl.submit(TARGET_QUERY)["query_id"]
            # The controller decides a retune; the journal append lands
            # (fsync'd) but the daemon dies before any INSTALL goes out —
            # the strictest mid-retune crash point.
            live = h1.daemon._running[query_id]
            update = live.controller._issue(0.0, live.controller.host_count, 0.25, "relax")
            h1.daemon._journal.record_rates(
                query_id, update.version, update.host_rate,
                update.event_rate, update.reason,
            )
            assert agent.agent.rates_version(query_id) == 0  # fan-out never ran
        finally:
            ctl.close()
            agent.close()
            h1.stop()

        # Recovery: same journal, fresh daemon, fresh agent session.
        h2 = DaemonHarness(journal_path=journal).start()
        agent2 = _agent(h2, "web-0")
        try:
            recovered = h2.daemon._running[query_id]
            assert recovered.controller is not None
            assert recovered.controller.version == 1
            assert recovered.controller.event_rate == pytest.approx(0.25)
            # The INSTALL replay carries the journalled version and the
            # re-attached agent converges to it.
            assert wait_for(
                lambda: agent2.agent.rates_version(query_id) == 1
            )
        finally:
            agent2.close()
            h2.stop()

    def test_repeated_crashes_keep_the_last_version(self, tmp_path):
        journal = str(tmp_path / "scrubd.journal")
        h1 = DaemonHarness(journal_path=journal).start()
        agent = _agent(h1, "web-0")
        ctl = ControlClient(h1.address)
        try:
            assert wait_for(lambda: len(h1.daemon.fleet.live()) == 1)
            query_id = ctl.submit(TARGET_QUERY)["query_id"]
            _push_retune(h1, query_id, 0.5)
            _push_retune(h1, query_id, 0.25)
            last = _push_retune(h1, query_id, 0.125, reason="clamp")
            assert wait_for(
                lambda: agent.agent.rates_version(query_id) == last.version
            )
        finally:
            ctl.close()
            agent.close()
            h1.stop()

        h2 = DaemonHarness(journal_path=journal).start()
        try:
            recovered = h2.daemon._running[query_id]
            assert recovered.controller.version == last.version
            assert recovered.controller.event_rate == pytest.approx(0.125)
        finally:
            h2.stop()


class TestAgentRestartConverges:
    def test_install_replay_brings_restarted_agent_to_current_version(self):
        h = DaemonHarness().start()
        agent = _agent(h, "web-0")
        ctl = ControlClient(h.address)
        try:
            assert wait_for(lambda: len(h.daemon.fleet.live()) == 1)
            query_id = ctl.submit(TARGET_QUERY)["query_id"]
            update = _push_retune(h, query_id, 0.5)
            assert wait_for(
                lambda: agent.agent.rates_version(query_id) == update.version
            )

            # Restart: a new session of the same host re-registers and
            # receives the ordinary INSTALL replay — which must carry
            # the current rate version, not the submit-time rates.
            agent.close()
            agent2 = _agent(h, "web-0")
            try:
                assert wait_for(
                    lambda: agent2.agent.rates_version(query_id) == update.version
                )
                assert query_id in agent2.agent.active_query_ids
            finally:
                agent2.close()
        finally:
            ctl.close()
            agent.close()
            h.stop()

    def test_stale_replay_cannot_roll_back(self):
        # A duplicated/reordered INSTALL replay carrying an older version
        # must be ignored by the agent's version compare.
        h = DaemonHarness().start()
        agent = _agent(h, "web-0")
        ctl = ControlClient(h.address)
        try:
            assert wait_for(lambda: len(h.daemon.fleet.live()) == 1)
            query_id = ctl.submit(TARGET_QUERY)["query_id"]
            v1 = _push_retune(h, query_id, 0.5)
            v2 = _push_retune(h, query_id, 0.25)
            assert wait_for(
                lambda: agent.agent.rates_version(query_id) == v2.version
            )
            # Replay v1 by hand over the client's own application path.
            agent._apply_rates(
                query_id,
                {"version": v1.version, "event_rate": v1.event_rate},
            )
            assert agent.agent.rates_version(query_id) == v2.version
        finally:
            ctl.close()
            agent.close()
            h.stop()
