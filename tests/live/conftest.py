"""Shared harness: a real ScrubDaemon serving on an ephemeral port from
a background thread's event loop, so tests talk to it over real TCP."""

import asyncio
import threading
import time

import pytest

from repro.live.server import ScrubDaemon


class DaemonHarness:
    """Run a ScrubDaemon on its own event-loop thread."""

    def __init__(self, **kwargs) -> None:
        kwargs.setdefault("port", 0)
        kwargs.setdefault("tick_interval", 0.05)
        self.daemon = ScrubDaemon(**kwargs)
        self.loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self._serve, name="scrubd-test", daemon=True
        )

    def _serve(self) -> None:
        asyncio.set_event_loop(self.loop)

        async def body() -> None:
            await self.daemon.start()
            self._ready.set()
            try:
                await self.daemon._stopping.wait()
            finally:
                await self.daemon.stop()

        self.loop.run_until_complete(body())

    def start(self) -> "DaemonHarness":
        self._thread.start()
        assert self._ready.wait(5.0), "scrubd did not start within 5s"
        return self

    @property
    def address(self) -> tuple[str, int]:
        return (self.daemon.host, self.daemon.port)

    def stop(self) -> None:
        self.loop.call_soon_threadsafe(self.daemon._stopping.set)
        self._thread.join(timeout=5.0)
        self.loop.close()


@pytest.fixture
def harness():
    h = DaemonHarness().start()
    yield h
    h.stop()


def wait_for(predicate, timeout: float = 5.0, interval: float = 0.02) -> bool:
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return bool(predicate())
