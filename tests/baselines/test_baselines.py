"""Tests for the logging baseline and the offline batch engine."""

import pytest

from repro.baselines import (
    BatchCostModel,
    BatchQueryEngine,
    LoggingBaseline,
    LogStore,
)
from repro.cluster import SimCluster
from repro.core.agent.transport import EventBatch
from repro.core.events import Event, EventRegistry


@pytest.fixture
def registry():
    r = EventRegistry()
    r.define("bid", [("exchange_id", "long"), ("bid_price", "double"),
                     ("user_id", "long"), ("city", "string"),
                     ("country", "string")])
    r.define("click", [("user_id", "long")])
    return r


def cluster_with_traffic(registry, hosts=2, seconds=10.0, per_tick=3):
    cluster = SimCluster(registry, flush_interval=0.5)
    host_list = cluster.add_service("BidServers", "dc1", hosts)
    counter = [0]

    def emit():
        for host in host_list:
            for _ in range(per_tick):
                counter[0] += 1
                host.charge_app(0.001)
                host.agent.log(
                    "bid", exchange_id=counter[0] % 3, bid_price=1.0,
                    user_id=counter[0] % 7, city="San Jose", country="US",
                    request_id=counter[0],
                )

    cluster.loop.call_every(0.5, emit)
    return cluster, counter


class TestLogStore:
    def test_ingest_accounting(self):
        store = LogStore()
        events = [Event("bid", {"x": i}, i, float(i)) for i in range(5)]
        store.ingest(EventBatch(host="h", query_id="log", events=events))
        assert store.stats.events == 5
        assert store.stats.batches == 1
        assert store.stats.json_bytes > 0
        assert len(store.events) == 5

    def test_no_retention_mode(self):
        store = LogStore(retain_events=False)
        store.ingest(EventBatch(host="h", query_id="log",
                                events=[Event("bid", {}, 1, 0.0)]))
        assert store.stats.events == 1
        with pytest.raises(RuntimeError):
            _ = store.events

    def test_events_of_type(self):
        store = LogStore()
        store.ingest(EventBatch(host="h", query_id="log", events=[
            Event("bid", {}, 1, 0.0), Event("click", {}, 1, 0.1),
        ]))
        assert len(store.events_of_type("bid")) == 1


class TestLoggingBaseline:
    def test_collects_every_event_type(self, registry):
        cluster, counter = cluster_with_traffic(registry)
        baseline = LoggingBaseline(cluster)
        baseline.install()
        cluster.run_until(10.0)
        emitted = counter[0]
        cluster.loop.call_every(0.5, lambda: None)  # keep loop ticking
        cluster.run_until(13.0)  # drain in-flight flushes
        # Everything logged, nothing filtered.
        assert baseline.store.stats.events >= emitted

    def test_scrub_queries_still_work_alongside(self, registry):
        from repro.cluster import run_to_completion

        cluster, _ = cluster_with_traffic(registry)
        baseline = LoggingBaseline(cluster)
        baseline.install()
        handle = cluster.submit("select COUNT(*) from bid duration 5s;")
        results = run_to_completion(cluster, handle)
        assert sum(r[0] for r in results.rows) > 0
        assert baseline.store.stats.events > 0

    def test_double_install_rejected(self, registry):
        cluster, _ = cluster_with_traffic(registry)
        baseline = LoggingBaseline(cluster)
        baseline.install()
        with pytest.raises(RuntimeError):
            baseline.install()

    def test_uninstall_stops_collection(self, registry):
        cluster, _ = cluster_with_traffic(registry)
        baseline = LoggingBaseline(cluster)
        baseline.install()
        cluster.run_until(5.0)
        baseline.uninstall()
        cluster.run_until(8.0)  # drain batches already in flight
        collected = baseline.store.stats.events
        cluster.run_until(15.0)
        assert baseline.store.stats.events == collected

    def test_logging_ships_more_bytes_than_selective_query(self, registry):
        """The core of the paper's anti-logging argument, in one assert."""
        from repro.cluster import run_to_completion

        # Run 1: log everything.
        c1, _ = cluster_with_traffic(registry)
        baseline = LoggingBaseline(c1)
        baseline.install()
        c1.run_until(10.0)
        logging_bytes = c1.scrub_bytes_shipped()

        # Run 2: one selective COUNT query, no logging.
        c2, _ = cluster_with_traffic(registry)
        handle = c2.submit(
            "select COUNT(*) from bid where bid.exchange_id = 0 duration 9s;"
        )
        run_to_completion(c2, handle)
        scrub_bytes = c2.scrub_bytes_shipped()

        assert logging_bytes > 3 * scrub_bytes


class TestBatchEngine:
    def _store_with_events(self, n=100):
        store = LogStore()
        events = []
        for i in range(n):
            events.append(Event(
                "bid", {"exchange_id": i % 3, "bid_price": 1.0, "user_id": i % 7},
                i, float(i) / 10.0, "h1",
            ))
        store.ingest(EventBatch(host="h1", query_id="log", events=events))
        return store

    def test_batch_answers_match_semantics(self, registry):
        store = self._store_with_events(90)
        engine = BatchQueryEngine(registry)
        report = engine.run(
            "select bid.user_id, COUNT(*) from bid window 100s "
            "group by bid.user_id;",
            store,
        )
        rows = report.results.windows[0].as_dicts()
        # 90 events, user_id = i % 7: counts 13 for ids < 6, 12 for 6.
        by_user = {r["bid.user_id"]: r["COUNT(*)"] for r in rows}
        assert sum(by_user.values()) == 90
        assert by_user[0] == 13

    def test_selection_applied_during_scan(self, registry):
        store = self._store_with_events(90)
        engine = BatchQueryEngine(registry)
        report = engine.run(
            "select COUNT(*) from bid where bid.exchange_id = 0 window 100s;",
            store,
        )
        assert report.records_scanned == 90
        assert report.records_matched == 30
        assert report.results.rows[0][0] == 30

    def test_scan_covers_unrelated_types(self, registry):
        store = self._store_with_events(10)
        store.ingest(EventBatch(host="h", query_id="log", events=[
            Event("click", {"user_id": 1}, 1, 0.5) for _ in range(5)
        ]))
        engine = BatchQueryEngine(registry)
        report = engine.run("select COUNT(*) from bid window 100s;", store)
        assert report.records_scanned == 15  # clicks scanned, not matched
        assert report.records_matched == 10

    def test_cost_model_dominated_by_startup_for_small_jobs(self, registry):
        store = self._store_with_events(100)
        engine = BatchQueryEngine(registry)
        report = engine.run("select COUNT(*) from bid window 100s;", store)
        assert report.estimated_runtime_seconds >= BatchCostModel().job_startup_seconds

    def test_cost_model_scales_with_records(self):
        model = BatchCostModel()
        small = model.estimate_runtime(records_scanned=10_000, shuffle_bytes=0)
        large = model.estimate_runtime(records_scanned=100_000_000, shuffle_bytes=0)
        assert large > small + 10
