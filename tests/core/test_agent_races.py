"""Agent thread-safety: uninstall() racing a concurrent flusher.

The agent promises that every matched event lands in exactly one of
shipped / dropped / shed, even while a flusher thread drains the buffer
concurrently with application ``log()`` calls and an ``uninstall()``.
Conservation is checked entirely on the wire: batches carry both the
events and the seen/drop counters, so summing over every batch the
transport ever saw must reproduce the invariant exactly — an orphaned
counter or a double-drained buffer shows up as an imbalance.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.agent import RecordingTransport, ScrubAgent
from repro.core.api import ManualClock
from repro.core.events import EventRegistry
from repro.core.query import parse_query, plan_query, validate_query


@pytest.fixture
def registry():
    r = EventRegistry()
    r.define("pv", [("url", "string")])
    return r


def host_objects(text, registry, query_id="q1"):
    plan = plan_query(validate_query(parse_query(text), registry), query_id)
    return plan.host_objects


def test_uninstall_racing_flush_conserves_counters(registry):
    """3 rounds of install → flood → uninstall-mid-flood, with a flusher
    thread spinning the whole time on a deliberately tiny buffer (64) so
    drops are certain and every code path in flush() races uninstall()."""
    clock = ManualClock(start=1.0)
    transport = RecordingTransport()
    agent = ScrubAgent(
        "h1", registry, transport, clock=clock,
        buffer_capacity=64, flush_batch_size=10_000,
    )
    stop = threading.Event()

    def flusher():
        while not stop.is_set():
            agent.flush()

    thread = threading.Thread(target=flusher, name="flusher", daemon=True)
    thread.start()
    try:
        for round_no in range(3):
            query_id = f"q{round_no}"
            (obj,) = host_objects(
                "select pv.url from pv window 60s;", registry, query_id
            )
            agent.install(obj)
            for i in range(4000):
                agent.log("pv", url=f"/{i % 7}", request_id=i)
                if i == 2000:
                    # Race the flusher: expire + final flush + removal,
                    # while log() keeps arriving (post-uninstall events
                    # take the fast path and must not be counted).
                    assert agent.uninstall(query_id) is True
            assert agent.uninstall(query_id) is False
            assert query_id not in agent.active_query_ids
    finally:
        stop.set()
        thread.join(timeout=10)
    assert not thread.is_alive()
    agent.flush()

    # Wire-side conservation, per query and in total: every seen event is
    # in a batch or in a drop counter — no orphans, no double counting.
    per_query: dict[str, dict[str, int]] = {}
    for batch in transport.batches:
        acc = per_query.setdefault(
            batch.query_id, {"seen": 0, "shipped": 0, "dropped": 0, "shed": 0}
        )
        acc["seen"] += sum(batch.seen_counts.values())
        acc["shipped"] += len(batch.events)
        acc["dropped"] += batch.dropped
        acc["shed"] += batch.shed
    assert set(per_query) == {"q0", "q1", "q2"}
    for query_id, acc in per_query.items():
        assert acc["seen"] == 2001, query_id  # logs 0..2000 inclusive
        assert acc["shed"] == 0, query_id  # no governor installed
        assert acc["dropped"] > 0, query_id  # the tiny buffer did overflow
        assert acc["seen"] == acc["shipped"] + acc["dropped"] + acc["shed"], query_id

    # Nothing was left behind in the agent either.
    assert agent.stats.events_matched == 3 * 2001
    assert agent.flush() == 0
