"""Tests for window assignment/tracking and the request-id equi-join."""

import pytest

from repro.core.central.join import JoinBuffer
from repro.core.central.window import (
    SlidingWindowAssigner,
    TumblingWindowAssigner,
    WindowTracker,
)
from repro.core.events import Event


class TestTumblingAssigner:
    def test_assignment(self):
        w = TumblingWindowAssigner(10.0)
        assert list(w.assign(0.0)) == [0]
        assert list(w.assign(9.999)) == [0]
        assert list(w.assign(10.0)) == [1]
        assert list(w.assign(25.0)) == [2]

    def test_bounds(self):
        w = TumblingWindowAssigner(10.0)
        assert w.start_of(3) == 30.0
        assert w.end_of(3) == 40.0

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            TumblingWindowAssigner(0.0)


class TestSlidingAssigner:
    def test_event_in_multiple_windows(self):
        w = SlidingWindowAssigner(length=10.0, slide=5.0)
        assert list(w.assign(12.0)) == [1, 2]  # [5,15) and [10,20)
        assert w.start_of(2) == 10.0
        assert w.end_of(2) == 20.0

    def test_slide_equals_length_is_tumbling(self):
        w = SlidingWindowAssigner(length=10.0, slide=10.0)
        assert list(w.assign(12.0)) == [1]

    def test_invalid_slide(self):
        with pytest.raises(ValueError):
            SlidingWindowAssigner(length=10.0, slide=20.0)
        with pytest.raises(ValueError):
            SlidingWindowAssigner(length=10.0, slide=0.0)


class TestWindowTracker:
    def test_observe_and_close(self):
        t = WindowTracker(TumblingWindowAssigner(10.0), grace_seconds=2.0)
        assert t.observe(5.0) == (0,)
        assert t.observe(15.0) == (1,)
        assert t.open_windows == (0, 1)
        assert t.closable(11.0) == ()       # 10 + grace 2 > 11
        assert t.closable(12.0) == (0,)
        t.close(0)
        assert t.open_windows == (1,)

    def test_late_event_counted_and_rejected(self):
        t = WindowTracker(TumblingWindowAssigner(10.0))
        t.observe(5.0)
        t.close(0)
        assert t.observe(3.0) == ()
        assert t.late_events == 1

    def test_implicitly_closed_below_watermark(self):
        t = WindowTracker(TumblingWindowAssigner(10.0))
        t.observe(25.0)
        t.close(2)
        # Window 1 was never seen, but closing 2 seals everything below.
        assert t.observe(15.0) == ()
        assert t.late_events == 1

    def test_close_all(self):
        t = WindowTracker(TumblingWindowAssigner(10.0))
        t.observe(5.0)
        t.observe(25.0)
        assert t.close_all() == (0, 2)
        assert t.open_windows == ()

    def test_negative_grace_rejected(self):
        with pytest.raises(ValueError):
            WindowTracker(TumblingWindowAssigner(1.0), grace_seconds=-1.0)


def ev(event_type, rid, **payload):
    return Event(event_type, payload, rid, 0.0, "h")


class TestJoinBuffer:
    def test_simple_one_to_one_join(self):
        jb = JoinBuffer(("bid", "click"))
        jb.add(ev("bid", 1, price=1.0))
        jb.add(ev("click", 1))
        jb.add(ev("bid", 2, price=2.0))  # no matching click
        rows = list(jb.join())
        assert len(rows) == 1
        assert rows[0]["bid"].request_id == 1
        assert rows[0]["click"].event_type == "click"

    def test_cross_product_for_duplicates(self):
        """A request with several exclusions joins once per exclusion."""
        jb = JoinBuffer(("bid", "exclusion"))
        jb.add(ev("bid", 1))
        for i in range(3):
            jb.add(ev("exclusion", 1, idx=i))
        rows = list(jb.join())
        assert len(rows) == 3
        assert {r["exclusion"].payload["idx"] for r in rows} == {0, 1, 2}

    def test_three_way_join(self):
        jb = JoinBuffer(("a", "b", "c"))
        for t in ("a", "b", "c"):
            jb.add(ev(t, 1))
            jb.add(ev(t, 2))
        jb.add(ev("a", 3))  # only in one type
        rows = list(jb.join())
        assert len(rows) == 2
        assert all(set(r) == {"a", "b", "c"} for r in rows)

    def test_empty_side_joins_nothing(self):
        jb = JoinBuffer(("bid", "click"))
        jb.add(ev("bid", 1))
        assert list(jb.join()) == []

    def test_unmatched_count(self):
        jb = JoinBuffer(("bid", "click"))
        jb.add(ev("bid", 1))
        jb.add(ev("click", 1))
        jb.add(ev("bid", 2))
        jb.add(ev("bid", 3))
        assert jb.unmatched_count() == 2

    def test_requires_two_sources(self):
        with pytest.raises(ValueError):
            JoinBuffer(("bid",))

    def test_buffered_counter(self):
        jb = JoinBuffer(("a", "b"))
        jb.add(ev("a", 1))
        jb.add(ev("b", 1))
        assert jb.buffered == 2
