"""Tests for the query parser, including every query the paper shows."""

import pytest

from repro.core.query import (
    AggregateCall,
    BinaryOp,
    Comparison,
    FieldRef,
    InList,
    Literal,
    ScrubSyntaxError,
    ServerEq,
    ServersIn,
    ServiceIn,
    TargetAll,
    TargetAnd,
    parse_expression,
    parse_query,
)


class TestPaperQueries:
    def test_figure_9_spam_query(self):
        q = parse_query(
            "Select bid.user_id, COUNT(*)\n"
            "from bid\n"
            "@[Service in BidServers and Server = host1]\n"
            "group by bid.user_id;"
        )
        assert q.sources == ("bid",)
        assert len(q.select_items) == 2
        assert q.select_items[0].expr == FieldRef("bid", "user_id")
        assert q.select_items[1].expr == AggregateCall("COUNT")
        assert q.group_by == (FieldRef("bid", "user_id"),)
        assert q.target == TargetAnd((ServiceIn(("BidServers",)), ServerEq("host1")))

    def test_figure_13_cpm_query(self):
        q = parse_query(
            "Select 1000*AVG(impression.cost)\n"
            "from impression\n"
            "where impression.line_item_id = 42\n"
            "@[Servers in (host1, host2)];"
        )
        expr = q.select_items[0].expr
        assert expr == BinaryOp(
            "*", Literal(1000), AggregateCall("AVG", FieldRef("impression", "cost"))
        )
        assert q.where == Comparison(
            "=", FieldRef("impression", "line_item_id"), Literal(42)
        )
        assert q.target == ServersIn(("host1", "host2"))

    def test_figure_14_count_query(self):
        q = parse_query(
            "Select COUNT(*) from click "
            "where click.line_item_id = 7 @[Servers in (h1)];"
        )
        assert q.select_items[0].expr == AggregateCall("COUNT")
        assert q.sources == ("click",)

    def test_join_query_shape(self):
        """The 8.4/8.5 join template: two event types in FROM."""
        q = parse_query(
            "Select exclusion.reason, COUNT(*) from bid, exclusion "
            "where bid.exchange_id = 5 group by exclusion.reason;"
        )
        assert q.sources == ("bid", "exclusion")
        assert q.is_join


class TestClauses:
    def test_defaults(self):
        q = parse_query("select COUNT(*) from bid;")
        assert isinstance(q.target, TargetAll)
        assert q.sampling.host_rate == 1.0
        assert q.sampling.event_rate == 1.0
        assert q.window is None
        assert q.span.start is None and q.span.duration is None

    def test_sampling_clauses(self):
        q = parse_query(
            "select COUNT(*) from impression sample hosts 10% sample events 25%;"
        )
        assert q.sampling.host_rate == pytest.approx(0.10)
        assert q.sampling.event_rate == pytest.approx(0.25)

    def test_sampling_requires_percent(self):
        with pytest.raises(ScrubSyntaxError, match="'%'"):
            parse_query("select COUNT(*) from bid sample hosts 10;")

    def test_sampling_range(self):
        with pytest.raises(ScrubSyntaxError, match="percentage"):
            parse_query("select COUNT(*) from bid sample events 150%;")

    def test_span_and_window(self):
        q = parse_query(
            "select COUNT(*) from bid start 100 duration 20m window 10s;"
        )
        assert q.span.start == 100.0
        assert q.span.duration == 1200.0
        assert q.window == 10.0

    def test_start_now(self):
        q = parse_query("select COUNT(*) from bid start now duration 5m;")
        assert q.span.start is None
        assert q.span.duration == 300.0

    def test_start_iso_datetime(self):
        q = parse_query("select COUNT(*) from bid start '2018-04-23T10:00:00';")
        assert q.span.start is not None

    def test_clauses_any_order(self):
        q = parse_query(
            "select COUNT(*) from bid window 5s @[ALL] duration 1m "
            "where bid.x = 1 group by bid.x;"
        )
        assert q.window == 5.0 and q.span.duration == 60.0

    def test_duplicate_clause_rejected(self):
        with pytest.raises(ScrubSyntaxError, match="duplicate"):
            parse_query("select COUNT(*) from bid window 5s window 6s;")

    def test_semicolon_optional(self):
        parse_query("select COUNT(*) from bid")
        parse_query("select COUNT(*) from bid;")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ScrubSyntaxError, match="trailing"):
            parse_query("select COUNT(*) from bid; extra")


class TestTargets:
    def test_all(self):
        q = parse_query("select COUNT(*) from bid @[all];")
        assert isinstance(q.target, TargetAll)

    def test_service_list_with_parens(self):
        q = parse_query("select COUNT(*) from bid @[Service in (A, B)];")
        assert q.target == ServiceIn(("A", "B"))

    def test_datacenter(self):
        q = parse_query("select COUNT(*) from bid @[Datacenter = DC1];")
        assert q.target.datacenter == "DC1"

    def test_compound_target(self):
        q = parse_query(
            "select COUNT(*) from bid "
            "@[Service in PresentationServers and Datacenter = 'DC1'];"
        )
        assert isinstance(q.target, TargetAnd)

    def test_bad_target_keyword(self):
        with pytest.raises(ScrubSyntaxError, match="SERVICE"):
            parse_query("select COUNT(*) from bid @[Rack = r1];")


class TestExpressions:
    def test_precedence(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr == BinaryOp("+", Literal(1), BinaryOp("*", Literal(2), Literal(3)))

    def test_parens(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr == BinaryOp("*", BinaryOp("+", Literal(1), Literal(2)), Literal(3))

    def test_and_or_precedence(self):
        expr = parse_expression("a = 1 or b = 2 and c = 3")
        assert expr.op == "OR"
        assert expr.terms[1].op == "AND"

    def test_not(self):
        expr = parse_expression("not a = 1")
        assert expr.op == "NOT"

    def test_in_list(self):
        expr = parse_expression("x in (1, 2, 3)")
        assert expr == InList(
            FieldRef(None, "x"), (Literal(1), Literal(2), Literal(3))
        )

    def test_not_in(self):
        expr = parse_expression("x not in (1)")
        assert expr.negated

    def test_between(self):
        expr = parse_expression("x between 1 and 5")
        assert expr.low == Literal(1) and expr.high == Literal(5)

    def test_is_null_and_is_not_null(self):
        assert not parse_expression("x is null").negated
        assert parse_expression("x is not null").negated

    def test_like(self):
        expr = parse_expression("city like 'San%'")
        assert expr.op == "LIKE"

    def test_negative_literal(self):
        assert parse_expression("-5") is not None
        expr = parse_expression("x in (-1, -2.5)")
        assert expr.values == (Literal(-1), Literal(-2.5))

    def test_booleans_and_null_literals(self):
        assert parse_expression("true") == Literal(True)
        assert parse_expression("FALSE") == Literal(False)
        assert parse_expression("null") == Literal(None)

    def test_count_distinct(self):
        expr = parse_expression("COUNT_DISTINCT(user_id)")
        assert expr == AggregateCall("COUNT_DISTINCT", FieldRef(None, "user_id"))

    def test_top_k(self):
        expr = parse_expression("TOP(5, user_id)")
        assert expr == AggregateCall("TOP", FieldRef(None, "user_id"), k=5)

    def test_top_requires_positive_k(self):
        with pytest.raises(ScrubSyntaxError):
            parse_expression("TOP(0, x)")

    def test_dotted_object_path(self):
        expr = parse_expression("bid.meta.device")
        assert expr == FieldRef("bid", "meta.device")

    def test_alias(self):
        q = parse_query("select COUNT(*) as total from bid;")
        assert q.select_items[0].alias == "total"

    def test_missing_select(self):
        with pytest.raises(ScrubSyntaxError, match="SELECT"):
            parse_query("from bid;")

    def test_missing_from(self):
        with pytest.raises(ScrubSyntaxError, match="FROM"):
            parse_query("select COUNT(*);")

    def test_error_carries_position(self):
        with pytest.raises(ScrubSyntaxError, match="line 1"):
            parse_query("select from bid;")


class TestHostNameLexing:
    def test_hyphenated_host_names_in_target(self):
        q = parse_query(
            "select COUNT(*) from bid "
            "@[Servers in (bidservers-dc1-0, bidservers-dc1-1)];"
        )
        assert q.target == ServersIn(("bidservers-dc1-0", "bidservers-dc1-1"))

    def test_dotted_fqdn_in_target(self):
        q = parse_query("select COUNT(*) from bid @[Server = host1.example.com];")
        assert q.target == ServerEq("host1.example.com")

    def test_quoted_host_names_still_work(self):
        q = parse_query("select COUNT(*) from bid @[Servers in ('a-b', 'c.d')];")
        assert q.target == ServersIn(("a-b", "c.d"))
