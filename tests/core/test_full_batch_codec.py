"""Round-trip properties for the lossless full-batch wire codec, and the
byte-accounting consistency it restores (`wire_size()` == encoded length,
identical counters across transports)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.agent.transport import (
    DirectTransport,
    EventBatch,
    PartialAggregate,
    RecordingTransport,
    decode_full_batch,
    encode_full_batch,
    encode_full_batch_into,
)
from repro.core.events import Event

# -- strategies -------------------------------------------------------------------

_scalar = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**62), max_value=2**62),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=30),
)
_value = st.recursive(
    _scalar,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(min_size=1, max_size=8), children, max_size=3),
    ),
    max_leaves=10,
)
_payload = st.dictionaries(st.text(min_size=1, max_size=12), _value, max_size=5)

_events = st.lists(_payload, max_size=6).map(
    lambda payloads: [
        Event("evt", p, i, float(i) * 1.5, f"h{i % 3}") for i, p in enumerate(payloads)
    ]
)
_seen_counts = st.dictionaries(
    st.tuples(st.text(max_size=12), st.integers(-(2**40), 2**40)),
    st.integers(min_value=0, max_value=2**40),
    max_size=6,
)
# Group-key parts and partial payloads are scalars or tuples of scalars
# (what `_group_key_part` and `to_partial` actually produce).
_key_part = st.one_of(_scalar, st.lists(_scalar, max_size=3).map(tuple))
_partials = st.lists(
    st.builds(
        PartialAggregate,
        event_type=st.text(max_size=10),
        window=st.integers(min_value=-(2**40), max_value=2**40),
        group_key=st.lists(_key_part, max_size=3).map(tuple),
        values=st.lists(_key_part, max_size=3).map(tuple),
    ),
    max_size=4,
)


def _batch(**overrides) -> EventBatch:
    base = dict(
        host="host-1",
        query_id="q00001",
        events=[Event("bid", {"p": 1.25}, 7, 3.0, "host-1")],
        seen_counts={("bid", 0): 4},
        dropped=2,
        sent_at=9.5,
        partials=[
            PartialAggregate("bid", 0, ("us", ("a", 2)), values=((10.0, True), 3))
        ],
    )
    base.update(overrides)
    return EventBatch(**base)


# -- the hypothesis property (events × seen_counts × partials × dropped) ---------


@settings(max_examples=120, deadline=None)
@given(
    events=_events,
    seen_counts=_seen_counts,
    partials=_partials,
    dropped=st.integers(min_value=0, max_value=2**40),
    sent_at=st.floats(min_value=0, max_value=1e12, allow_nan=False),
    host=st.text(max_size=20),
    query_id=st.text(max_size=20),
    shed=st.integers(min_value=0, max_value=2**40),
    quarantined=st.text(max_size=40),
)
def test_full_batch_round_trip_property(
    events, seen_counts, partials, dropped, sent_at, host, query_id, shed, quarantined
):
    batch = EventBatch(
        host=host,
        query_id=query_id,
        events=events,
        seen_counts=seen_counts,
        dropped=dropped,
        sent_at=sent_at,
        partials=partials,
        shed=shed,
        quarantined=quarantined,
    )
    encoded = encode_full_batch(batch)
    assert decode_full_batch(encoded) == batch
    assert batch.wire_size() == len(encoded)
    # The zero-alloc writer produces identical bytes into a dirty,
    # reused buffer — the v2 shed/quarantine fields included.
    out = bytearray(b"\x00\x01\x02")
    encode_full_batch_into(out, batch)
    assert bytes(out[3:]) == encoded
    reborn = decode_full_batch(memoryview(out)[3:])
    assert reborn.shed == shed and reborn.quarantined == quarantined


# -- directed edge cases ----------------------------------------------------------


class TestFullBatchCodec:
    def test_round_trip_everything(self):
        batch = _batch()
        assert decode_full_batch(encode_full_batch(batch)) == batch

    def test_empty_batch(self):
        batch = EventBatch(host="h", query_id="q", events=[])
        encoded = encode_full_batch(batch)
        assert decode_full_batch(encoded) == batch
        assert batch.wire_size() == len(encoded)

    def test_unicode_fields(self):
        batch = _batch(
            host="хост-✓",
            query_id="q-日本語",
            events=[Event("evt", {"täg": "ünïcode ✓"}, 1, 2.0, "хост-✓")],
            seen_counts={("evt", -3): 9},
            partials=[PartialAggregate("evt", -3, ("日本",), values=("✓",))],
        )
        assert decode_full_batch(encode_full_batch(batch)) == batch

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ValueError, match="trailing"):
            decode_full_batch(encode_full_batch(_batch()) + b"!")

    def test_bad_version_rejected(self):
        data = bytearray(encode_full_batch(_batch()))
        data[0] = 99
        with pytest.raises(ValueError, match="version"):
            decode_full_batch(bytes(data))

    def test_nested_tuples_restored(self):
        partial = PartialAggregate(
            "evt", 1, group_key=(("a", ("b", 2)),), values=((1.0, (2, 3)),)
        )
        batch = _batch(partials=[partial], events=[], seen_counts={}, dropped=0)
        decoded = decode_full_batch(encode_full_batch(batch))
        assert decoded.partials[0].group_key == (("a", ("b", 2)),)
        assert decoded.partials[0].values == ((1.0, (2, 3)),)


# -- wire_size honesty and transport consistency ---------------------------------


class TestWireAccounting:
    def test_wire_size_is_exact(self):
        batch = _batch()
        assert batch.wire_size() == len(encode_full_batch(batch))

    def test_metadata_is_counted(self):
        plain = _batch(seen_counts={}, partials=[], dropped=0)
        heavy = _batch(
            seen_counts={("bid", w): 1 for w in range(50)}, partials=[], dropped=0
        )
        assert heavy.wire_size() > plain.wire_size() + 50 * 16

    def test_direct_and_recording_transports_agree(self):
        batches = [_batch(), _batch(events=[], seen_counts={("bid", 1): 2})]
        direct = DirectTransport(lambda b: None)
        recording = RecordingTransport()
        for batch in batches:
            direct.send(batch)
            recording.send(batch)
        assert recording.batches_sent == direct.batches_sent == len(batches)
        assert recording.bytes_sent == direct.bytes_sent
        assert recording.bytes_sent == sum(b.wire_size() for b in batches)
