"""Tests for the query tokenizer."""

import pytest

from repro.core.query.errors import ScrubSyntaxError
from repro.core.query.lexer import TokenType, parse_duration, tokenize


def kinds(text):
    return [t.type for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text)][:-1]  # drop EOF


class TestBasics:
    def test_keywords_case_insensitive(self):
        toks = tokenize("Select FROM wHeRe")
        assert all(t.type == TokenType.KEYWORD for t in toks[:-1])

    def test_identifiers_keep_case(self):
        toks = tokenize("BidServers")
        assert toks[0].type == TokenType.IDENT
        assert toks[0].value == "BidServers"

    def test_numbers(self):
        toks = tokenize("42 3.14")
        assert (toks[0].type, toks[0].value) == (TokenType.INT, "42")
        assert (toks[1].type, toks[1].value) == (TokenType.FLOAT, "3.14")

    def test_strings_single_and_double(self):
        toks = tokenize("'abc' \"def\"")
        assert [t.value for t in toks[:2]] == ["abc", "def"]

    def test_string_escaped_quote(self):
        toks = tokenize("'it''s'")
        assert toks[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(ScrubSyntaxError, match="unterminated"):
            tokenize("'abc")

    def test_durations(self):
        toks = tokenize("10s 20m 500ms 2h 1d")
        assert all(t.type == TokenType.DURATION for t in toks[:5])
        assert [t.value for t in toks[:5]] == ["10s", "20m", "500ms", "2h", "1d"]

    def test_duration_vs_identifier_boundary(self):
        # '10second' is malformed, not DURATION('10s') + IDENT('econd').
        with pytest.raises(ScrubSyntaxError, match="malformed number"):
            tokenize("10second")

    def test_at_bracket(self):
        toks = tokenize("@[Service in BidServers]")
        assert toks[0].type == TokenType.AT_LBRACKET
        assert toks[-2].type == TokenType.RBRACKET

    def test_at_without_bracket(self):
        with pytest.raises(ScrubSyntaxError, match="after '@'"):
            tokenize("@Service")

    def test_operators(self):
        toks = tokenize("= != <> < <= > >= + - /")
        ops = [t.value for t in toks[:-1]]
        assert ops == ["=", "!=", "!=", "<", "<=", ">", ">=", "+", "-", "/"]

    def test_star_and_percent(self):
        toks = tokenize("* %")
        assert toks[0].type == TokenType.STAR
        assert toks[1].type == TokenType.PERCENT_SIGN

    def test_comment_skipped(self):
        toks = tokenize("select -- a comment\nfrom")
        assert [t.lowered for t in toks[:-1]] == ["select", "from"]

    def test_line_and_column_tracking(self):
        toks = tokenize("select\n  from")
        assert (toks[0].line, toks[0].column) == (1, 1)
        assert (toks[1].line, toks[1].column) == (2, 3)

    def test_unexpected_character(self):
        with pytest.raises(ScrubSyntaxError, match="unexpected character"):
            tokenize("select #")

    def test_eof_always_present(self):
        assert tokenize("")[-1].type == TokenType.EOF
        assert tokenize("select")[-1].type == TokenType.EOF


class TestParseDuration:
    @pytest.mark.parametrize(
        "text,seconds",
        [("10s", 10.0), ("500ms", 0.5), ("2m", 120.0), ("1h", 3600.0), ("1d", 86400.0),
         ("1.5s", 1.5)],
    )
    def test_values(self, text, seconds):
        assert parse_duration(text) == seconds

    def test_not_a_duration(self):
        with pytest.raises(ValueError):
            parse_duration("10")
