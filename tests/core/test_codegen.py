"""The host fast-path codegen: generated dispatchers vs. the closure
fallback, the per-schema routing index, and the armed-cost counters.

The contract under test is *behavioural equality*: an agent running the
exec-compiled processors (``use_codegen=True``, the default) must be
indistinguishable — return values, every stat counter, and the bytes it
puts on the wire — from one forced onto the closure-compiler reference
path.  Speed is the benchmark's concern; this file pins correctness.
"""

import math

import pytest

from repro.core.agent import RecordingTransport, ScrubAgent
from repro.core.agent.buffer import BoundedBuffer
from repro.core.agent.governor import ImpactBudget
from repro.core.agent.transport import encode_full_batch
from repro.core.events import EventRegistry
from repro.core.query import parse_query, plan_query, validate_query
from repro.core.query.ast import Comparison, FieldRef, Literal
from repro.core.query.codegen import (
    COUNT_MASK,
    FLUSH_DUE,
    ArmedQuery,
    build_processor,
)


@pytest.fixture
def registry():
    r = EventRegistry()
    r.define("bid", [
        ("exchange_id", "long"), ("city", "string"), ("bid_price", "double"),
        ("user_id", "long"),
    ])
    r.define("click", [("user_id", "long")])
    return r


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


def _host_objects(text, registry, query_id="q1"):
    plan = plan_query(validate_query(parse_query(text), registry), query_id)
    return plan.host_objects


def _pair(registry, **kwargs):
    """Two identically configured agents: codegen on / closures forced."""
    agents = []
    for use_codegen in (True, False):
        transport = RecordingTransport()
        agent = ScrubAgent(
            "h1", registry, transport, clock=FakeClock(),
            use_codegen=use_codegen, **kwargs,
        )
        agents.append((agent, transport))
    return agents


QUERIES = [
    "select COUNT(*) from bid;",
    "select COUNT(*) from bid where bid.exchange_id = 5;",
    "select COUNT(*) from bid where bid.exchange_id = 99;",
    "select bid.city, COUNT(*) from bid where bid.bid_price > 1.0 "
    "group by bid.city;",
    "select COUNT(*) from bid sample events 25%;",
    "select COUNT(*) from bid where bid.city LIKE 'San%';",
    "select COUNT(*) from bid where bid.exchange_id IN (1, 5, 9);",
    "select COUNT(*) from bid where bid.user_id BETWEEN 5 AND 9 "
    "and bid.city != 'Lisbon';",
]

EVENTS = [
    {"exchange_id": 5, "city": "San Jose", "bid_price": 1.25, "user_id": 7},
    {"exchange_id": 99, "city": "Porto", "bid_price": 0.5, "user_id": 4},
    {"exchange_id": 1, "city": "San Mateo", "bid_price": 2.0},
    {"city": "Lisbon", "user_id": 9},
    {},
]


def _run_workload(agent, transport, clock_step=0.3):
    returns = []
    for rid in range(60):
        payload = EVENTS[rid % len(EVENTS)]
        returns.append(agent.log("bid", payload, request_id=rid))
        returns.append(agent.log("click", {"user_id": rid}, request_id=rid))
        agent.clock.now += clock_step
    agent.flush()
    return returns, [encode_full_batch(b) for b in transport.batches]


class TestCodegenClosureEquivalence:
    @pytest.mark.parametrize("query", QUERIES)
    def test_single_query_byte_identical(self, registry, query):
        results = []
        for agent, transport in _pair(registry):
            for obj in _host_objects(query, registry):
                agent.install(obj)
            results.append(_run_workload(agent, transport))
        (ret_a, wire_a), (ret_b, wire_b) = results
        assert ret_a == ret_b
        assert wire_a == wire_b

    def test_all_queries_armed_together(self, registry):
        """Eight queries on one type: a mixed bag of fused entries in one
        generated dispatcher must equal eight closure walks."""
        results, stats = [], []
        for agent, transport in _pair(registry):
            for i, query in enumerate(QUERIES):
                for obj in _host_objects(query, registry, query_id=f"q{i}"):
                    agent.install(obj)
            results.append(_run_workload(agent, transport))
            stats.append(agent.stats)
        (ret_a, wire_a), (ret_b, wire_b) = results
        assert ret_a == ret_b
        assert sorted(wire_a) == sorted(wire_b)
        assert stats[0] == stats[1]

    def test_span_gated_query(self, registry):
        for agent, transport in _pair(registry):
            (obj,) = _host_objects("select COUNT(*) from bid;", registry)
            agent.install(obj, activates_at=5.0, expires_at=10.0)
            ret, _ = _run_workload(agent, transport)
        # Both paths: matched only while 5.0 <= now < 10.0.
        assert any(r == 1 for r in ret) and any(r == 0 for r in ret)

    def test_governed_overload_escalates_identically(self, registry):
        """Byte-budget breaches (deterministic, unlike wall time) must
        walk the same downgrade → shed → quarantine ladder on both
        paths, with identical shed/drop conservation on the wire."""
        budget = ImpactBudget(
            interval_seconds=1.0, max_bytes=1, min_rate_factor=0.6,
            shed_intervals=2,
        )
        results, quarantined = [], []
        for agent, transport in _pair(
            registry, impact_budget=budget, flush_batch_size=5,
        ):
            (obj,) = _host_objects("select COUNT(*) from bid;", registry)
            agent.install(obj)
            ret, wire = _run_workload(agent, transport, clock_step=0.11)
            results.append((ret, wire))
            quarantined.append(dict(agent.quarantined))
        (ret_a, wire_a), (ret_b, wire_b) = results
        assert ret_a == ret_b
        assert wire_a == wire_b
        assert quarantined[0] == quarantined[1]
        assert "q1" in quarantined[0]

    def test_timed_every_call_equals_untimed(self, registry):
        """timing_sample_every=1 measures every call; the measurements
        must be observation-only — identical wire output either way."""
        wires = []
        for every in (1, 1_000_000):
            transport = RecordingTransport()
            agent = ScrubAgent(
                "h1", registry, transport, clock=FakeClock(),
                timing_sample_every=every,
            )
            (obj,) = _host_objects("select COUNT(*) from bid;", registry)
            agent.install(obj)
            _, wire = _run_workload(agent, transport)
            wires.append(wire)
        assert wires[0] == wires[1]


class TestRoutingIndex:
    def test_log_on_unarmed_type_never_examined(self, registry):
        for agent, _ in _pair(registry):
            (obj,) = _host_objects("select COUNT(*) from bid;", registry)
            agent.install(obj)
            agent.log("click", {"user_id": 1}, request_id=1)
            assert agent.stats.events_examined == 0
            assert agent.stats.events_checked == 0

    def test_uninstall_removes_route(self, registry):
        agent = ScrubAgent("h1", registry, RecordingTransport(), clock=FakeClock())
        (obj,) = _host_objects("select COUNT(*) from bid;", registry)
        agent.install(obj)
        assert "bid" in agent._routes
        agent.uninstall("q1")
        assert "bid" not in agent._routes
        assert agent.log("bid", EVENTS[0], request_id=1) == 0

    def test_expiry_removes_route_on_flush(self, registry):
        agent = ScrubAgent("h1", registry, RecordingTransport(), clock=FakeClock())
        (obj,) = _host_objects("select COUNT(*) from bid;", registry)
        agent.install(obj, expires_at=1.0)
        agent.clock.now = 2.0
        agent.flush()
        assert "bid" not in agent._routes

    def test_quarantine_rebuilds_routes(self, registry):
        budget = ImpactBudget(
            interval_seconds=1.0, max_bytes=1, min_rate_factor=0.6,
            shed_intervals=1,
        )
        agent = ScrubAgent(
            "h1", registry, RecordingTransport(), clock=FakeClock(),
            impact_budget=budget, flush_batch_size=1,
        )
        (obj,) = _host_objects("select COUNT(*) from bid;", registry)
        agent.install(obj)
        for rid in range(40):
            agent.log("bid", EVENTS[0], request_id=rid)
            agent.clock.now += 0.3
        agent.flush()
        assert "q1" in agent.quarantined
        assert "bid" not in agent._routes

    def test_two_types_route_independently(self, registry):
        agent = ScrubAgent("h1", registry, RecordingTransport(), clock=FakeClock())
        (obj_bid,) = _host_objects("select COUNT(*) from bid;", registry, "qb")
        (obj_click,) = _host_objects("select COUNT(*) from click;", registry, "qc")
        agent.install(obj_bid)
        agent.install(obj_click)
        assert agent.log("bid", EVENTS[0], request_id=1) == 1
        assert agent.log("click", {"user_id": 2}, request_id=2) == 1
        assert agent.stats.events_checked == 2  # one entry per routed call
        agent.uninstall("qb")
        assert set(agent._routes) == {"click"}


class TestArmedCostCounters:
    def test_routed_and_skipped(self, registry):
        agent = ScrubAgent(
            "h1", registry, RecordingTransport(), clock=FakeClock(),
            timing_sample_every=1,
        )
        (obj,) = _host_objects("select COUNT(*) from bid;", registry)
        agent.install(obj)
        for rid in range(3):
            agent.log("bid", EVENTS[0], request_id=rid)
        for rid in range(2):
            agent.log("click", {"user_id": rid}, request_id=rid)
        costs = agent.query_costs()
        assert costs["q1"]["routed"] == 3
        assert costs["q1"]["skipped"] == 2
        assert costs["q1"]["ewma_ns"] > 0.0

    def test_install_baseline_excludes_prior_traffic(self, registry):
        agent = ScrubAgent("h1", registry, RecordingTransport(), clock=FakeClock())
        for rid in range(5):
            agent.log("bid", EVENTS[0], request_id=rid)
        (obj,) = _host_objects("select COUNT(*) from bid;", registry)
        agent.install(obj)
        agent.log("bid", EVENTS[0], request_id=9)
        costs = agent.query_costs()
        assert costs["q1"]["routed"] == 1
        assert costs["q1"]["skipped"] == 0

    def test_counters_survive_rebuild(self, registry):
        agent = ScrubAgent("h1", registry, RecordingTransport(), clock=FakeClock())
        (obj,) = _host_objects("select COUNT(*) from bid;", registry, "qa")
        agent.install(obj)
        agent.log("bid", EVENTS[0], request_id=1)
        # Installing a second query rebuilds the bid route group.
        (obj2,) = _host_objects(
            "select COUNT(*) from bid where bid.exchange_id = 5;", registry, "qb"
        )
        agent.install(obj2)
        agent.log("bid", EVENTS[0], request_id=2)
        costs = agent.query_costs()
        assert costs["qa"]["routed"] == 2
        assert costs["qb"]["routed"] == 1


class TestAutoFlush:
    @pytest.mark.parametrize("use_codegen", [True, False])
    def test_flush_due_at_batch_size(self, registry, use_codegen):
        transport = RecordingTransport()
        agent = ScrubAgent(
            "h1", registry, transport, clock=FakeClock(),
            flush_batch_size=3, use_codegen=use_codegen,
        )
        (obj,) = _host_objects("select COUNT(*) from bid;", registry)
        agent.install(obj)
        for rid in range(3):
            agent.log("bid", EVENTS[0], request_id=rid)
        # The third buffered event crossed the threshold: flushed without
        # an explicit flush() call.
        assert transport.batches_sent == 1
        assert len(transport.events) == 3
        assert agent.buffered == 0


class TestGeneratedProcessorDirect:
    """build_processor() driven standalone, for shapes the SQL layer
    cannot currently produce (dotted payload paths)."""

    class _IQ:
        def __init__(self):
            self.seen_by_window = {}
            self.pending_dropped = 0

    class _QS:
        def __init__(self):
            self.seen = 0
            self.shipped = 0
            self.dropped = 0

    class _ST:
        def __init__(self):
            self.events_checked = 0
            self.events_matched = 0
            self.events_shipped = 0
            self.events_dropped = 0

    def _fused(self, predicate, buffer, *, project=None, flush_batch_size=10**9):
        iq, qs, st = self._IQ(), self._QS(), self._ST()
        entry = ArmedQuery(
            predicate=predicate, sampler_seed=0, sampler_threshold=0,
            sample_always=True, activates_at=-math.inf, expires_at=math.inf,
            fused=True, iq=iq, qstats=qs, window_seconds=1.0, project=project,
        )
        process = build_processor(
            (entry,), event_type="evt", host="h1", stats=st, buffer=buffer,
            flush_batch_size=flush_batch_size,
        )
        return process, iq, qs, st

    def test_dotted_field_path(self):
        predicate = Comparison("=", FieldRef(None, "meta.os"), Literal("linux"))
        process, iq, qs, _ = self._fused(predicate, BoundedBuffer(8))
        assert process({"meta": {"os": "linux"}}, 1, 0.0) == 1
        assert process({"meta": {"os": "mac"}}, 2, 0.0) == 0
        assert process({}, 3, 0.0) == 0
        # A flat key spelled with a dot wins over the nested path.
        assert process({"meta.os": "linux", "meta": {}}, 4, 0.0) == 1
        assert qs.seen == 2 and qs.shipped == 2

    def test_flush_due_bit_and_count_mask(self):
        buffer = BoundedBuffer(8)
        process, _, _, st = self._fused(None, buffer, flush_batch_size=2)
        assert process({}, 1, 0.0) == 1
        r = process({}, 2, 0.0)
        assert r & FLUSH_DUE
        assert r & COUNT_MASK == 1
        # The counter never absorbs the flag bit.
        assert st.events_matched == 2

    def test_drop_accounting_when_full(self):
        buffer = BoundedBuffer(1)
        process, iq, qs, st = self._fused(None, buffer)
        process({}, 1, 0.0)
        process({}, 2, 0.0)
        assert qs.shipped == 1 and qs.dropped == 1
        assert iq.pending_dropped == 1
        assert buffer.dropped == 1 and buffer.offered == 2
        assert st.events_shipped == 1 and st.events_dropped == 1

    def test_projection_subset(self):
        buffer = BoundedBuffer(8)
        process, _, _, _ = self._fused(None, buffer, project=("a", "b"))
        process({"a": 1, "c": 3}, 1, 0.5)
        ((iq, payload, rid, ts),) = buffer.drain()
        assert payload == {"a": 1}
        assert (rid, ts) == (1, 0.5)
