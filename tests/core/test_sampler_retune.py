"""Nested-by-construction rate changes: the keyed threshold sampler and
the agent's versioned retune path.

The closed-loop controller changes event rates while a query runs; the
whole scheme is only sound if a rate change can never *reshuffle* which
requests are kept — lowering a rate must only remove requests, raising
it must restore exactly the previously kept ids.  The threshold-compare
sampler gives this by construction; these tests pin it, property-style,
and cover the agent's version-compare application on top.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.core.agent import EventSampler, RecordingTransport, ScrubAgent
from repro.core.events import EventRegistry
from repro.core.query import parse_query, plan_query, validate_query

RIDS = list(range(0, 4000, 7))


def kept_set(sampler: EventSampler) -> set[int]:
    return {rid for rid in RIDS if sampler.keep(rid)}


class TestSubsetProperty:
    @given(
        r1=st.floats(min_value=1e-6, max_value=1.0, exclude_max=True),
        r2=st.floats(min_value=1e-6, max_value=1.0),
        query_id=st.text(
            alphabet="abcdefghij0123456789", min_size=1, max_size=12
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_lower_rate_keeps_strict_subset(self, r1, r2, query_id):
        lo, hi = sorted((r1, r2))
        low = EventSampler(lo, query_id)
        high = EventSampler(hi, query_id)
        assert kept_set(low) <= kept_set(high)

    @given(rate=st.floats(min_value=1e-6, max_value=1.0))
    @settings(max_examples=40, deadline=None)
    def test_set_rate_equivalent_to_fresh_sampler(self, rate):
        retuned = EventSampler(1.0, "q42")
        retuned.set_rate(rate)
        fresh = EventSampler(rate, "q42")
        assert kept_set(retuned) == kept_set(fresh)

    def test_lower_then_restore_is_identity(self):
        sampler = EventSampler(0.5, "q7")
        before = kept_set(sampler)
        sampler.set_rate(0.05)
        reduced = kept_set(sampler)
        assert reduced <= before
        sampler.set_rate(0.5)
        assert kept_set(sampler) == before

    def test_rate_one_keeps_everything(self):
        sampler = EventSampler(0.25, "q9")
        sampler.set_rate(1.0)
        assert kept_set(sampler) == set(RIDS)

    def test_set_rate_validates(self):
        sampler = EventSampler(0.5, "q1")
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                sampler.set_rate(bad)
        assert sampler.rate == 0.5  # unchanged after rejection


@pytest.fixture
def registry():
    r = EventRegistry()
    r.define("bid", [("exchange_id", "long"), ("bid_price", "double")])
    return r


def install(agent, registry, text, query_id="q1"):
    plan = plan_query(validate_query(parse_query(text), registry), query_id)
    for obj in plan.host_objects:
        agent.install(obj, 0.0, 3600.0)


class TestAgentRetune:
    def make(self, registry):
        return ScrubAgent("h1", registry, RecordingTransport(), clock=lambda: 1.0)

    def test_retune_applies_and_versions(self, registry):
        agent = self.make(registry)
        install(agent, registry, "select COUNT(*) from bid sample events 50%;")
        assert agent.rates_version("q1") == 0
        assert agent.retune("q1", 0.125, version=3)
        assert agent.rates_version("q1") == 3
        assert agent.query_costs()["q1"]["rates_version"] == 3

    def test_stale_version_ignored(self, registry):
        # INSTALL replays can arrive out of order after a daemon crash;
        # an older version must never roll the sampler back.
        agent = self.make(registry)
        install(agent, registry, "select COUNT(*) from bid sample events 50%;")
        assert agent.retune("q1", 0.125, version=5)
        assert not agent.retune("q1", 0.9, version=4)
        assert not agent.retune("q1", 0.7, version=5)
        assert agent.rates_version("q1") == 5

    def test_retune_unknown_query_is_noop(self, registry):
        agent = self.make(registry)
        assert not agent.retune("missing", 0.5, version=1)

    def test_retune_changes_kept_population_nestedly(self, registry):
        agent = self.make(registry)
        install(agent, registry, "select SUM(bid_price) from bid sample events 90%;")

        def kept(n=2000):
            out = set()
            for rid in range(n):
                if agent.log("bid", request_id=rid, exchange_id=1, bid_price=1.0):
                    out.add(rid)
            return out

        wide = kept()
        agent.retune("q1", 0.1, version=1)
        narrow = kept()
        assert narrow <= wide
        agent.retune("q1", 0.9, version=2)
        assert kept() == wide

    def test_uninstall_clears_version(self, registry):
        agent = self.make(registry)
        install(agent, registry, "select COUNT(*) from bid sample events 50%;")
        agent.retune("q1", 0.25, version=2)
        agent.uninstall("q1")
        assert agent.rates_version("q1") == 0
