"""Self-healing ShardPool: the supervisor's respawn/re-register/degrade
contract, without the full chaos harness (those live under
``tests/live/test_chaos_pool.py``).

A worker death must never poison the pool or the caller: ingest routes
pipe errors to the supervisor, the replacement worker gets every active
query re-registered, and the unrecoverable in-flight slice is reported
as *degraded coverage* (a ``shard_gaps`` entry) on exactly the windows
that were open — later windows are whole again.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.core.agent.transport import EventBatch
from repro.core.central.pool import ShardPool
from repro.core.events import Event, EventRegistry
from repro.core.query import parse_query, plan_query, validate_query
from repro.core.query.errors import ScrubExecutionError

COUNT_QUERY = "select COUNT(*) from bid window 60s;"
GROUPED_QUERY = (
    "select bid.exchange_id, COUNT(*), SUM(bid.bid_price) "
    "from bid window 60s group by bid.exchange_id;"
)


@pytest.fixture
def registry():
    r = EventRegistry()
    r.define("bid", [("exchange_id", "long"), ("bid_price", "double")])
    return r


def _plan(text, registry, query_id="q1"):
    return plan_query(validate_query(parse_query(text), registry), query_id)


def _batch(window: int, n: int = 40, host: str = "h1", query_id: str = "q1",
           rid_base: int = 0) -> EventBatch:
    events = [
        Event(
            "bid",
            {"exchange_id": i % 4, "bid_price": (i % 8) * 0.25},
            rid_base + i,  # spread over every shard
            window * 60.0 + (i % 60),
            host,
        )
        for i in range(n)
    ]
    return EventBatch(host=host, query_id=query_id, events=events)


def _kill_worker(pool: ShardPool, index: int) -> None:
    proc = pool._procs[index]
    proc.kill()
    proc.join(timeout=5)


class TestSupervisor:
    def test_dead_worker_ingest_routes_to_supervisor_not_caller(self, registry):
        with ShardPool(workers=2, grace_seconds=1.0) as pool:
            pool.register(_plan(GROUPED_QUERY, registry).central_object)
            _kill_worker(pool, 0)
            pool.ingest(_batch(window=0))  # must not raise
            health = pool.pool_health()
            assert health["alive"] == health["workers"] == 2
            assert health["respawns"] == 1
            (entry,) = health["respawn_log"]
            assert entry["shard"] == 0
            assert entry["generation"] == 1
            assert "ingest" in entry["reason"]

    def test_respawn_reregisters_queries_and_marks_only_open_windows(self, registry):
        with ShardPool(workers=2, grace_seconds=1.0) as pool:
            pool.register(_plan(COUNT_QUERY, registry).central_object)
            pool.ingest(_batch(window=0, n=40))
            _kill_worker(pool, 1)
            # Detection happens on the next send that touches shard 1.
            pool.ingest(_batch(window=0, n=40, rid_base=40))
            (w0,) = pool.advance(61.5)
            assert w0.coverage is not None and w0.coverage.degraded
            assert "worker respawned" in w0.coverage.shard_gaps["shard-1"]

            # The fresh worker was re-registered: a later window is whole —
            # exact count, no gap in (or any) coverage.
            pool.ingest(_batch(window=1, n=40, rid_base=80))
            (w1,) = pool.advance(121.5)
            assert w1.coverage is None
            assert w1.rows[0][0] == 40
            pool.finish("q1")

    def test_close_is_idempotent_with_a_pre_killed_worker(self, registry):
        pool = ShardPool(workers=2, grace_seconds=1.0)
        procs = list(pool._procs)
        _kill_worker(pool, 0)
        pool.close()
        pool.close()
        assert all(not p.is_alive() for p in procs)

    def test_hung_worker_detected_by_close_heartbeat(self, registry):
        with ShardPool(workers=2, grace_seconds=1.0, worker_timeout=0.5) as pool:
            pool.register(_plan(COUNT_QUERY, registry).central_object)
            pool.ingest(_batch(window=0, n=40))
            os.kill(pool._procs[0].pid, signal.SIGSTOP)
            (w0,) = pool.advance(61.5)
            assert "hung" in w0.coverage.shard_gaps["shard-0"]
            health = pool.pool_health()
            assert health["alive"] == 2 and health["respawns"] == 1

            # The pool keeps serving after replacing the frozen worker.
            pool.ingest(_batch(window=1, n=40, rid_base=40))
            (w1,) = pool.advance(121.5)
            assert w1.coverage is None
            assert w1.rows[0][0] == 40
            pool.finish("q1")

    def test_per_query_failure_isolation(self):
        """A poisoned query fails alone: co-registered queries on the same
        workers still close their windows and report exact results."""
        registry = EventRegistry()
        registry.define("bid", [("tag", "object"), ("val", "double")])
        with ShardPool(workers=2, grace_seconds=1.0) as pool:
            poisoned = _plan(
                "select bid.tag, SUM(bid.val) from bid window 60s group by bid.tag;",
                registry, "q1",
            )
            healthy = _plan("select COUNT(*) from bid window 60s;", registry, "q2")
            pool.register(poisoned.central_object)
            pool.register(healthy.central_object)
            pool.ingest(EventBatch(
                host="h1", query_id="q1",
                events=[Event("bid", {"tag": "a", "val": "oops"}, 1, 1.0, "h1")],
            ))
            good = [
                Event("bid", {"tag": "a", "val": 0.5}, i, 1.0, "h1")
                for i in range(20)
            ]
            pool.ingest(EventBatch(host="h1", query_id="q2", events=good))
            with pytest.raises(ScrubExecutionError, match="shard worker"):
                pool.finish("q1")
            assert pool.finish("q2").rows[0][0] == 20
            # No respawn happened: a query error is not a worker fault.
            assert pool.pool_health()["respawns"] == 0
