"""HAVING and QUANTILE end-to-end: parser → validator → engine → pool.

HAVING is a post-aggregation group filter evaluated at window close,
over the *same* scaled/overridden aggregate values the output rows
show; QUANTILE is the sketch-backed aggregate.  The tier-1 contract
pinned here:

* round-trip and validation rules for both constructs;
* per-window filtering with SQL three-valued logic (a group whose
  HAVING predicate is UNKNOWN is dropped, same as WHERE);
* HAVING may use aggregates absent from the SELECT list without
  leaking them into the output columns;
* serial engine, 1-worker pool and 4-worker pool agree bit-for-bit on
  queries combining GROUP BY, HAVING and QUANTILE — the acceptance
  criterion for the mergeable-sketch design.
"""

from __future__ import annotations

import pytest

from repro.cluster.metrics import percentile
from repro.core.agent.transport import EventBatch
from repro.core.central.engine import CentralEngine
from repro.core.central.pool import ShardPool
from repro.core.events import Event, EventRegistry
from repro.core.query import parse_query, plan_query, unparse, validate_query
from repro.core.query.errors import ScrubSyntaxError, ScrubValidationError


def _registry() -> EventRegistry:
    registry = EventRegistry()
    registry.define(
        "bid",
        [("exchange_id", "long"), ("bid_price", "double"), ("user_id", "long")],
    )
    return registry


def _plan(text: str, query_id: str = "q1"):
    return plan_query(validate_query(parse_query(text), _registry()), query_id)


def _batch(events, host="h1"):
    return EventBatch(host=host, query_id="q1", events=events)


def _bid(i, ts, exchange, price, host="h1"):
    return Event(
        "bid",
        {"exchange_id": exchange, "bid_price": price, "user_id": i},
        i,
        ts,
        host,
    )


# -- grammar + validation ------------------------------------------------------


ROUNDTRIP = [
    "select bid.exchange_id, COUNT(*) from bid group by bid.exchange_id "
    "having COUNT(*) >= 30;",
    "select bid.exchange_id, QUANTILE(bid.bid_price, 0.99) from bid "
    "group by bid.exchange_id;",
    "select bid.exchange_id, COUNT(*) from bid window 10s slide 5s "
    "group by bid.exchange_id having COUNT(*) > 2 and "
    "QUANTILE(bid.bid_price, 0.5) < 4.0;",
    "select COUNT(*) from bid having COUNT(*) > 10;",
]


@pytest.mark.parametrize("text", ROUNDTRIP)
def test_having_quantile_round_trip(text):
    q1 = parse_query(text)
    q2 = parse_query(unparse(q1))
    assert q1 == q2
    assert unparse(q2) == unparse(q1)


def test_having_requires_aggregation():
    with pytest.raises(ScrubValidationError, match="HAVING"):
        validate_query(
            parse_query("select bid.user_id from bid having bid.user_id > 1;"),
            _registry(),
        )


def test_having_rejects_ungrouped_fields():
    with pytest.raises(ScrubValidationError, match="neither aggregated nor listed"):
        validate_query(
            parse_query(
                "select bid.exchange_id, COUNT(*) from bid "
                "group by bid.exchange_id having bid.user_id > 1;"
            ),
            _registry(),
        )


def test_having_must_be_boolean():
    with pytest.raises(ScrubValidationError, match="boolean predicate"):
        validate_query(
            parse_query(
                "select bid.exchange_id, COUNT(*) from bid "
                "group by bid.exchange_id having COUNT(*) + 1;"
            ),
            _registry(),
        )


def test_quantile_argument_rules():
    with pytest.raises(ScrubSyntaxError):
        parse_query("select QUANTILE(bid.bid_price, 1.5) from bid;")
    with pytest.raises(ScrubSyntaxError):
        parse_query("select QUANTILE(bid.bid_price) from bid;")
    registry = EventRegistry()
    registry.define("bid", [("city", "string")])
    with pytest.raises(ScrubValidationError, match="numeric"):
        validate_query(
            parse_query("select QUANTILE(bid.city, 0.5) from bid;"), registry
        )


# -- engine semantics ----------------------------------------------------------


def _finish(engine, plan, batches):
    engine.register(plan.central_object)
    for batch in batches:
        engine.ingest(batch)
    return engine.finish(plan.query_id)


def test_having_filters_groups_per_window():
    plan = _plan(
        "select bid.exchange_id, COUNT(*) from bid window 60s "
        "group by bid.exchange_id having COUNT(*) >= 3;"
    )
    events = (
        # Window 0: exchange 1 has 3 events (kept), exchange 2 has 2 (dropped).
        [_bid(i, 10.0 + i, 1, 1.0) for i in range(3)]
        + [_bid(10 + i, 20.0 + i, 2, 1.0) for i in range(2)]
        # Window 1: exchange 2 has 4 events (kept this time).
        + [_bid(20 + i, 70.0 + i, 2, 1.0) for i in range(4)]
    )
    results = _finish(CentralEngine(grace_seconds=1.0), plan, [_batch(events)])
    rows = {
        (w.window_start, row[0]): row[1]
        for w in results.windows
        for row in w.rows
    }
    assert rows == {(0.0, 1): 3, (60.0, 2): 4}


def test_having_only_aggregate_stays_hidden():
    """HAVING can filter on SUM while SELECT shows only COUNT; the SUM
    state exists but never becomes an output column."""
    plan = _plan(
        "select bid.exchange_id, COUNT(*) from bid window 60s "
        "group by bid.exchange_id having SUM(bid.bid_price) > 5.0;"
    )
    events = [_bid(i, 1.0 + i, 1, 2.0) for i in range(4)]  # sum 8.0: kept
    events += [_bid(10 + i, 1.0 + i, 2, 1.0) for i in range(4)]  # sum 4.0: dropped
    results = _finish(CentralEngine(grace_seconds=1.0), plan, [_batch(events)])
    assert results.columns == ("bid.exchange_id", "COUNT(*)")
    assert [row.values for row in results.rows] == [(1, 4)]


def test_having_unknown_is_excluded():
    """3VL: a group whose HAVING predicate evaluates to NULL is dropped,
    exactly like a WHERE row whose predicate is UNKNOWN."""
    plan = _plan(
        "select bid.exchange_id, COUNT(*) from bid window 60s "
        "group by bid.exchange_id having AVG(bid.bid_price) > 0.0;"
    )
    with_prices = [_bid(i, 1.0 + i, 1, 2.0) for i in range(3)]
    null_prices = [
        Event("bid", {"exchange_id": 2, "user_id": 50 + i}, 50 + i, 1.0 + i, "h1")
        for i in range(3)
    ]
    results = _finish(
        CentralEngine(grace_seconds=1.0), plan, [_batch(with_prices + null_prices)]
    )
    assert [row.values for row in results.rows] == [(1, 3)]


def test_having_with_sliding_windows():
    """Each slide position filters independently: a group passes in the
    overlapping windows where its count clears the bar."""
    plan = _plan(
        "select bid.exchange_id, COUNT(*) from bid window 20s slide 10s "
        "group by bid.exchange_id having COUNT(*) >= 3;"
    )
    # Exchange 1: 4 events in [10, 20) — present in windows starting 0 and 10.
    events = [_bid(i, 12.0 + i, 1, 1.0) for i in range(4)]
    # Exchange 2: 2 events — never clears the bar.
    events += [_bid(10 + i, 12.0 + i, 2, 1.0) for i in range(2)]
    results = _finish(CentralEngine(grace_seconds=1.0), plan, [_batch(events)])
    kept = {(w.window_start, row[0]) for w in results.windows for row in w.rows}
    assert kept == {(0.0, 1), (10.0, 1)}


def test_quantile_tracks_exact_percentile():
    plan = _plan("select QUANTILE(bid.bid_price, 0.9) from bid window 60s;")
    prices = [0.25 * (i % 37 + 1) for i in range(500)]
    events = [_bid(i, 1.0 + (i % 50), 1, p) for i, p in enumerate(prices)]
    results = _finish(CentralEngine(grace_seconds=1.0), plan, [_batch(events)])
    (value,) = results.rows[0].values
    exact = percentile(prices, 90.0)
    assert value == pytest.approx(exact, rel=0.03)


# -- serial vs pool ------------------------------------------------------------

POOL_QUERY = (
    "select bid.exchange_id, QUANTILE(bid.bid_price, 0.95), COUNT(*) "
    "from bid window 60s group by bid.exchange_id "
    "having COUNT(*) >= 10 and QUANTILE(bid.bid_price, 0.5) > 0.5;"
)


def _pool_batches():
    batches = []
    for window in range(3):
        for host in ("h1", "h2", "h3"):
            events = [
                _bid(
                    window * 1000 + i,
                    window * 60.0 + (i % 60),
                    (i + window) % 4,
                    ((i * 7) % 41) * 0.25 + 0.25,
                    host,
                )
                for i in range(150)
            ]
            batches.append(_batch(events, host=host))
    return batches


def _pool_signature(engine):
    plan = _plan(POOL_QUERY)
    engine.register(plan.central_object)
    for batch in _pool_batches():
        engine.ingest(batch)
    results = engine.finish(plan.query_id)
    return [
        (w.window_start, [row.values for row in w.rows]) for w in results.windows
    ]


def test_quantile_having_serial_vs_pool_bit_identical():
    serial = _pool_signature(CentralEngine(grace_seconds=1.0))
    assert any(rows for _, rows in serial)  # the query actually fires
    with ShardPool(workers=1, grace_seconds=1.0) as pool1:
        assert _pool_signature(pool1) == serial
    with ShardPool(workers=4, grace_seconds=1.0) as pool4:
        assert _pool_signature(pool4) == serial
