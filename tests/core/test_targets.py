"""Tests for @[...] target resolution and host sampling."""

import pytest

from repro.core.query import parse_query
from repro.core.query.targets import HostDescription, sample_hosts, target_matches


def target_of(text):
    return parse_query(f"select COUNT(*) from bid {text};").target


H1 = HostDescription("host1", services=["BidServers"], datacenter="DC1")
H2 = HostDescription("host2", services=["AdServers"], datacenter="DC1")
H3 = HostDescription("host3", services=["BidServers", "AdServers"], datacenter="DC2")


class TestMatching:
    def test_all(self):
        t = target_of("@[all]")
        assert all(target_matches(t, h) for h in (H1, H2, H3))

    def test_server_eq(self):
        t = target_of("@[Server = host1]")
        assert target_matches(t, H1)
        assert not target_matches(t, H2)

    def test_servers_in(self):
        t = target_of("@[Servers in (host1, host3)]")
        assert target_matches(t, H1)
        assert not target_matches(t, H2)
        assert target_matches(t, H3)

    def test_service_in(self):
        t = target_of("@[Service in BidServers]")
        assert target_matches(t, H1)
        assert not target_matches(t, H2)
        assert target_matches(t, H3)  # multi-service host

    def test_service_case_insensitive(self):
        t = target_of("@[Service in bidservers]")
        assert target_matches(t, H1)

    def test_datacenter(self):
        t = target_of("@[Datacenter = dc2]")
        assert not target_matches(t, H1)
        assert target_matches(t, H3)

    def test_compound_and(self):
        """Paper 3.2's example: AdServers clients in the San Jose DC."""
        t = target_of("@[Service in AdServers and Datacenter = DC1]")
        assert not target_matches(t, H1)
        assert target_matches(t, H2)
        assert not target_matches(t, H3)  # right service, wrong DC

    def test_paper_figure_9_target(self):
        t = target_of("@[Service in BidServers and Server = host1]")
        assert target_matches(t, H1)
        assert not target_matches(t, H3)


class TestHostSampling:
    def test_full_rate_keeps_all(self):
        hosts = list(range(20))
        assert sample_hosts(hosts, 1.0, seed=1) == hosts

    def test_sample_size_is_ceiling(self):
        hosts = list(range(20))
        assert len(sample_hosts(hosts, 0.10, seed=1)) == 2
        assert len(sample_hosts(hosts, 0.05, seed=1)) == 1
        assert len(sample_hosts(hosts, 0.51, seed=1)) == 11

    def test_at_least_one_host(self):
        assert len(sample_hosts([1, 2, 3], 0.01, seed=1)) == 1

    def test_deterministic_in_seed(self):
        hosts = list(range(100))
        assert sample_hosts(hosts, 0.2, seed=7) == sample_hosts(hosts, 0.2, seed=7)
        assert sample_hosts(hosts, 0.2, seed=7) != sample_hosts(hosts, 0.2, seed=8)

    def test_subset_of_input(self):
        hosts = list(range(50))
        chosen = sample_hosts(hosts, 0.3, seed=3)
        assert set(chosen) <= set(hosts)
        assert len(set(chosen)) == len(chosen)

    def test_empty_input(self):
        assert sample_hosts([], 0.5, seed=1) == []

    def test_bad_rate(self):
        from repro.core.query.errors import ScrubValidationError

        with pytest.raises(ScrubValidationError):
            sample_hosts([1], 0.0, seed=1)
        with pytest.raises(ScrubValidationError):
            sample_hosts([1], 1.5, seed=1)
