"""Tests for the event registry and the @scrub_type declarative API."""

import pytest

from repro.core.events import (
    EventRegistry,
    EventSchema,
    UnknownEventTypeError,
    schema_of,
    scrub_field,
    scrub_type,
)


class TestEventRegistry:
    def test_define_and_get(self):
        registry = EventRegistry()
        schema = registry.define("bid", [("price", "double")])
        assert registry.get("bid") is schema
        assert "bid" in registry
        assert len(registry) == 1

    def test_unknown_type_error_lists_known(self):
        registry = EventRegistry()
        registry.define("bid", [("price", "double")])
        with pytest.raises(UnknownEventTypeError) as exc:
            registry.get("click")
        assert "bid" in str(exc.value)

    def test_idempotent_reregistration(self):
        registry = EventRegistry()
        schema = EventSchema("bid", [("price", "double")])
        registry.register(schema)
        registry.register(EventSchema("bid", [("price", "double")]))
        assert len(registry) == 1

    def test_conflicting_reregistration_rejected(self):
        registry = EventRegistry()
        registry.define("bid", [("price", "double")])
        with pytest.raises(ValueError, match="different shape"):
            registry.define("bid", [("price", "long")])

    def test_iteration_and_names(self):
        registry = EventRegistry()
        registry.define("a", [("x", "long")])
        registry.define("b", [("y", "long")])
        assert registry.names() == ("a", "b")
        assert [s.name for s in registry] == ["a", "b"]

    def test_copy_is_independent(self):
        registry = EventRegistry()
        registry.define("a", [("x", "long")])
        clone = registry.copy()
        clone.define("b", [("y", "long")])
        assert "b" in clone
        assert "b" not in registry


class TestScrubTypeDecorator:
    def test_paper_figure_1(self):
        """The bid event type of paper Fig. 1, in the Python API."""
        registry = EventRegistry()

        @scrub_type("bid", registry)
        class ScrubBid:
            exchange_id = scrub_field("long")
            city = scrub_field("string")
            country = scrub_field("string")
            bid_price = scrub_field("double")
            campaign_id = scrub_field("long")

        schema = registry.get("bid")
        assert schema.field_names == (
            "exchange_id", "city", "country", "bid_price", "campaign_id",
        )
        assert schema_of(ScrubBid) is schema

        bid = ScrubBid(exchange_id=3, city="Porto", country="PT",
                       bid_price=1.5, campaign_id=9)
        assert bid.payload() == {
            "exchange_id": 3, "city": "Porto", "country": "PT",
            "bid_price": 1.5, "campaign_id": 9,
        }

    def test_explicit_wire_name(self):
        @scrub_type("evt")
        class Evt:
            internal = scrub_field("long", name="wire_name")

        assert schema_of(Evt).field_names == ("wire_name",)

    def test_field_coercion_on_assignment(self):
        @scrub_type("evt")
        class Evt:
            price = scrub_field("double")

        e = Evt(price=2)
        assert e.payload() == {"price": 2.0}
        with pytest.raises(TypeError):
            Evt(price="high")

    def test_unknown_kwarg_rejected(self):
        @scrub_type("evt")
        class Evt:
            a = scrub_field("long")

        with pytest.raises(TypeError, match="unexpected"):
            Evt(b=1)

    def test_partial_payload_allowed(self):
        @scrub_type("evt")
        class Evt:
            a = scrub_field("long")
            b = scrub_field("string")

        assert Evt(a=1).payload() == {"a": 1}

    def test_empty_class_rejected(self):
        with pytest.raises(ValueError, match="no scrub_field"):
            @scrub_type("evt")
            class Evt:
                pass

    def test_schema_of_non_scrub_type(self):
        with pytest.raises(TypeError):
            schema_of(object())

    def test_repr_shows_fields(self):
        @scrub_type("evt")
        class Evt:
            a = scrub_field("long")

        assert "a=5" in repr(Evt(a=5))
