"""Round-trip tests for the event wire encodings, including properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import Event
from repro.core.events.encoding import (
    decode_batch,
    decode_binary,
    decode_json,
    encode_batch,
    encode_batch_into,
    encode_binary,
    encode_binary_into,
    encode_json,
    encoded_size_batch,
    encoded_size_event,
)


def _event(payload, rid=7, ts=1.5, host="h1"):
    return Event("bid", payload, rid, ts, host)


SAMPLE_PAYLOADS = [
    {},
    {"city": "Porto"},
    {"price": 1.25, "count": 3, "ok": True, "note": None},
    {"ids": [1, 2, 3], "names": ["a", "b"]},
    {"meta": {"device": {"os": "linux"}, "v": 2}},
    {"mixed": [1, "two", 3.0, None, True]},
    {"unicode": "日本語 ünïcode ✓", "quote": 'he said "hi"'},
]


class TestJsonEncoding:
    @pytest.mark.parametrize("payload", SAMPLE_PAYLOADS)
    def test_round_trip(self, payload):
        event = _event(payload)
        assert decode_json(encode_json(event)) == event

    def test_one_line_per_event(self):
        assert encode_json(_event({"a": 1})).count(b"\n") == 1

    def test_decodes_from_str(self):
        event = _event({"a": 1})
        assert decode_json(encode_json(event).decode()) == event


class TestBinaryEncoding:
    @pytest.mark.parametrize("payload", SAMPLE_PAYLOADS)
    def test_round_trip(self, payload):
        event = _event(payload)
        assert decode_binary(encode_binary(event)) == event

    def test_denser_than_json_for_typical_payload(self):
        event = _event(
            {"exchange_id": 123456, "city": "San Jose", "country": "US",
             "bid_price": 1.25, "campaign_id": 98765}
        )
        assert len(encode_binary(event)) < len(encode_json(event))

    def test_trailing_garbage_rejected(self):
        data = encode_binary(_event({"a": 1})) + b"x"
        with pytest.raises(ValueError, match="trailing"):
            decode_binary(data)

    def test_corrupt_tag_rejected(self):
        data = bytearray(encode_binary(_event({"a": 1})))
        data[-9] = ord("Z")  # clobber the value tag of field 'a'
        with pytest.raises(ValueError, match="unknown tag"):
            decode_binary(bytes(data))

    def test_unencodable_value(self):
        with pytest.raises(TypeError, match="unencodable"):
            encode_binary(_event({"bad": object()}))

    def test_negative_ints(self):
        event = _event({"a": -(2**40)})
        assert decode_binary(encode_binary(event)) == event


class TestBatchEncoding:
    def test_round_trip(self):
        events = [_event({"i": i}, rid=i) for i in range(10)]
        assert decode_batch(encode_batch(events)) == events

    def test_empty_batch(self):
        assert decode_batch(encode_batch([])) == []

    def test_batch_trailing_garbage(self):
        with pytest.raises(ValueError, match="trailing"):
            decode_batch(encode_batch([_event({})]) + b"!")


# -- property-based round trips ---------------------------------------------------

_scalar = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**62), max_value=2**62),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=40),
)
_value = st.recursive(
    _scalar,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(min_size=1, max_size=10), children, max_size=4),
    ),
    max_leaves=15,
)
_payload = st.dictionaries(
    st.text(min_size=1, max_size=15), _value, max_size=6
)


@settings(max_examples=150, deadline=None)
@given(
    payload=_payload,
    rid=st.integers(min_value=0, max_value=2**62),
    ts=st.floats(min_value=0, max_value=1e12, allow_nan=False),
    host=st.text(max_size=20),
)
def test_binary_round_trip_property(payload, rid, ts, host):
    event = Event("evt", payload, rid, ts, host)
    assert decode_binary(encode_binary(event)) == event


@settings(max_examples=100, deadline=None)
@given(payloads=st.lists(_payload, max_size=8))
def test_batch_round_trip_property(payloads):
    events = [Event("evt", p, i, float(i), "h") for i, p in enumerate(payloads)]
    assert decode_batch(encode_batch(events)) == events


@settings(max_examples=100, deadline=None)
@given(payloads=st.lists(_payload, max_size=8))
def test_encoded_sizes_are_exact(payloads):
    """The arithmetic size mirrors equal the writers byte-for-byte, and
    the ``_into`` writers produce the same bytes at any buffer offset
    (the zero-alloc flush path appends mid-buffer)."""
    events = [Event("evt", p, i, float(i), "h") for i, p in enumerate(payloads)]
    encoded = encode_batch(events)
    assert encoded_size_batch(events) == len(encoded)
    for event in events:
        assert encoded_size_event(event) == len(encode_binary(event))
    # Append into a dirty reusable buffer: identical bytes after the prefix.
    out = bytearray(b"\xaa\xbb\xcc")
    encode_batch_into(out, events)
    assert bytes(out[3:]) == encoded
    if events:
        out2 = bytearray()
        encode_binary_into(out2, events[0])
        assert bytes(out2) == encode_binary(events[0])
