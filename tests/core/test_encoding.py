"""Round-trip tests for the event wire encodings, including properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.agent.transport import (
    EventBatch,
    decode_full_batch,
    encode_full_batch,
    scan_full_batch,
)
from repro.core.events import Event
from repro.core.events.encoding import (
    decode_batch,
    decode_binary,
    decode_json,
    encode_batch,
    encode_batch_into,
    encode_binary,
    encode_binary_into,
    encode_json,
    encoded_size_batch,
    encoded_size_event,
    scan_batch_shards,
)


def _event(payload, rid=7, ts=1.5, host="h1"):
    return Event("bid", payload, rid, ts, host)


SAMPLE_PAYLOADS = [
    {},
    {"city": "Porto"},
    {"price": 1.25, "count": 3, "ok": True, "note": None},
    {"ids": [1, 2, 3], "names": ["a", "b"]},
    {"meta": {"device": {"os": "linux"}, "v": 2}},
    {"mixed": [1, "two", 3.0, None, True]},
    {"unicode": "日本語 ünïcode ✓", "quote": 'he said "hi"'},
]


class TestJsonEncoding:
    @pytest.mark.parametrize("payload", SAMPLE_PAYLOADS)
    def test_round_trip(self, payload):
        event = _event(payload)
        assert decode_json(encode_json(event)) == event

    def test_one_line_per_event(self):
        assert encode_json(_event({"a": 1})).count(b"\n") == 1

    def test_decodes_from_str(self):
        event = _event({"a": 1})
        assert decode_json(encode_json(event).decode()) == event


class TestBinaryEncoding:
    @pytest.mark.parametrize("payload", SAMPLE_PAYLOADS)
    def test_round_trip(self, payload):
        event = _event(payload)
        assert decode_binary(encode_binary(event)) == event

    def test_denser_than_json_for_typical_payload(self):
        event = _event(
            {"exchange_id": 123456, "city": "San Jose", "country": "US",
             "bid_price": 1.25, "campaign_id": 98765}
        )
        assert len(encode_binary(event)) < len(encode_json(event))

    def test_trailing_garbage_rejected(self):
        data = encode_binary(_event({"a": 1})) + b"x"
        with pytest.raises(ValueError, match="trailing"):
            decode_binary(data)

    def test_corrupt_tag_rejected(self):
        data = bytearray(encode_binary(_event({"a": 1})))
        data[-9] = ord("Z")  # clobber the value tag of field 'a'
        with pytest.raises(ValueError, match="unknown tag"):
            decode_binary(bytes(data))

    def test_unencodable_value(self):
        with pytest.raises(TypeError, match="unencodable"):
            encode_binary(_event({"bad": object()}))

    def test_negative_ints(self):
        event = _event({"a": -(2**40)})
        assert decode_binary(encode_binary(event)) == event


class TestBatchEncoding:
    def test_round_trip(self):
        events = [_event({"i": i}, rid=i) for i in range(10)]
        assert decode_batch(encode_batch(events)) == events

    def test_empty_batch(self):
        assert decode_batch(encode_batch([])) == []

    def test_batch_trailing_garbage(self):
        with pytest.raises(ValueError, match="trailing"):
            decode_batch(encode_batch([_event({})]) + b"!")


# -- torn and corrupted frames -----------------------------------------------------
#
# The zero-copy scanner must fail *identically* to the decoder: a torn or
# corrupted buffer raises the same structured error at the same offset
# whether it is fully decoded or only scanned for shard slices — never a
# silent drop, never a mis-slice.  Test data is ASCII on purpose: the
# scanner skips event-type and payload-key strings without a utf-8
# decode, so only byte-level surgery (truncation, tag/length/count
# clobbering) is guaranteed to surface symmetrically.


def _raises_identically(buf: bytes) -> None:
    """Both paths must reject *buf* with the same error type and text."""
    with pytest.raises(ValueError) as decode_err:
        decode_batch(buf)
    with pytest.raises(ValueError) as scan_err:
        scan_batch_shards(buf, 3)
    assert str(scan_err.value) == str(decode_err.value)


def _full_raises_identically(data: bytes) -> None:
    with pytest.raises(ValueError) as decode_err:
        decode_full_batch(data)
    with pytest.raises(ValueError) as scan_err:
        scan_full_batch(data)
    assert str(scan_err.value) == str(decode_err.value)


class TestTornFrames:
    BATCH = [
        _event({"price": 1.25, "city": "Porto", "tags": [1, "a", None]},
               rid=3, ts=2.0, host="h1"),
        _event({"count": 7, "nested": {"deep": {"ok": True}}},
               rid=-9, ts=61.0, host="h2"),
        _event({}, rid=4, ts=0.5, host="h1"),
    ]

    def test_every_truncation_point_fails_identically(self):
        buf = encode_batch(self.BATCH)
        for cut in range(len(buf)):
            _raises_identically(buf[:cut])

    def test_every_full_batch_truncation_fails_identically(self):
        data = encode_full_batch(
            EventBatch(
                host="h1",
                query_id="q1",
                events=self.BATCH,
                seen_counts={("bid", 0): 9},
                dropped=2,
                shed=1,
                quarantined="budget",
            )
        )
        for cut in range(len(data)):
            _full_raises_identically(data[:cut])

    def test_trailing_garbage_fails_identically(self):
        _raises_identically(encode_batch(self.BATCH) + b"\x00")
        _raises_identically(encode_batch([]) + b"junk")

    def test_corrupt_value_tag_fails_identically(self):
        buf = bytearray(encode_batch([_event({"a": 1}, host="h")]))
        # Layout of the only field: [u32 klen]['a'][tag][i64]; the tag
        # byte sits 9 bytes from the end.
        assert buf[-9:-8] == b"I"
        buf[-9] = ord("Z")
        _raises_identically(bytes(buf))

    def test_inflated_string_length_fails_identically(self):
        buf = bytearray(encode_batch([_event({}, host="hh")]))
        # The batch is [u32 count][u32 tlen]["bid"]...; inflate the
        # event-type length so it runs past the end of the buffer.
        buf[4:8] = (2**20).to_bytes(4, "little")
        _raises_identically(bytes(buf))

    def test_inflated_event_count_fails_identically(self):
        buf = bytearray(encode_batch(self.BATCH))
        buf[0:4] = (len(self.BATCH) + 1).to_bytes(4, "little")
        _raises_identically(bytes(buf))

    def test_inflated_field_count_fails_identically(self):
        event = _event({"a": 1}, host="h")
        buf = bytearray(encode_batch([event]))
        # The <qdI header trails the two leading strings; its last 4
        # bytes (nfields) start 20 bytes after them.  Inflate nfields so
        # both walkers run off the end mid-field-list.
        header_at = 4 + (4 + len("bid")) + (4 + len("h"))
        nfields_at = header_at + 8 + 8
        assert buf[nfields_at:nfields_at + 4] == (1).to_bytes(4, "little")
        buf[nfields_at:nfields_at + 4] = (3).to_bytes(4, "little")
        _raises_identically(bytes(buf))

    def test_scanner_never_silently_short_slices(self):
        """A cut anywhere inside the batch body can never yield a scan
        that quietly returns fewer events than the count prefix."""
        buf = encode_batch(self.BATCH)
        for cut in range(4, len(buf)):
            with pytest.raises(ValueError):
                scan_batch_shards(buf[:cut], 2)


# -- property-based round trips ---------------------------------------------------

_scalar = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**62), max_value=2**62),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=40),
)
_value = st.recursive(
    _scalar,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(min_size=1, max_size=10), children, max_size=4),
    ),
    max_leaves=15,
)
_payload = st.dictionaries(
    st.text(min_size=1, max_size=15), _value, max_size=6
)


@settings(max_examples=150, deadline=None)
@given(
    payload=_payload,
    rid=st.integers(min_value=0, max_value=2**62),
    ts=st.floats(min_value=0, max_value=1e12, allow_nan=False),
    host=st.text(max_size=20),
)
def test_binary_round_trip_property(payload, rid, ts, host):
    event = Event("evt", payload, rid, ts, host)
    assert decode_binary(encode_binary(event)) == event


@settings(max_examples=100, deadline=None)
@given(payloads=st.lists(_payload, max_size=8))
def test_batch_round_trip_property(payloads):
    events = [Event("evt", p, i, float(i), "h") for i, p in enumerate(payloads)]
    assert decode_batch(encode_batch(events)) == events


@settings(max_examples=100, deadline=None)
@given(payloads=st.lists(_payload, max_size=8))
def test_encoded_sizes_are_exact(payloads):
    """The arithmetic size mirrors equal the writers byte-for-byte, and
    the ``_into`` writers produce the same bytes at any buffer offset
    (the zero-alloc flush path appends mid-buffer)."""
    events = [Event("evt", p, i, float(i), "h") for i, p in enumerate(payloads)]
    encoded = encode_batch(events)
    assert encoded_size_batch(events) == len(encoded)
    for event in events:
        assert encoded_size_event(event) == len(encode_binary(event))
    # Append into a dirty reusable buffer: identical bytes after the prefix.
    out = bytearray(b"\xaa\xbb\xcc")
    encode_batch_into(out, events)
    assert bytes(out[3:]) == encoded
    if events:
        out2 = bytearray()
        encode_binary_into(out2, events[0])
        assert bytes(out2) == encode_binary(events[0])
