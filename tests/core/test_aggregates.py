"""Tests for aggregate states: update, merge, NULL handling, scaling."""

import pytest

from repro.core.central.aggregates import make_state
from repro.core.query.ast import AggregateCall, FieldRef


def agg(func, k=None):
    arg = None if func == "COUNT" and k is None else FieldRef("e", "x")
    return AggregateCall(func, arg, k=k)


class TestCount:
    def test_counts_non_null(self):
        s = make_state(agg("COUNT"))
        for v in [1, None, 2, None, 3]:
            s.update(v)
        assert s.result() == 3

    def test_merge(self):
        a, b = make_state(agg("COUNT")), make_state(agg("COUNT"))
        a.update(1)
        b.update(1)
        b.update(2)
        a.merge(b)
        assert a.result() == 3

    def test_scaled(self):
        s = make_state(agg("COUNT"))
        s.update(1)
        s.update(1)
        assert s.scaled_result(10.0) == 20.0
        assert s.scaled_result(1.0) == 2


class TestSum:
    def test_sum(self):
        s = make_state(agg("SUM"))
        for v in [1.5, None, 2.5]:
            s.update(v)
        assert s.result() == 4.0

    def test_empty_sum_is_null(self):
        assert make_state(agg("SUM")).result() is None
        s = make_state(agg("SUM"))
        s.update(None)
        assert s.result() is None

    def test_scaled(self):
        s = make_state(agg("SUM"))
        s.update(3.0)
        assert s.scaled_result(4.0) == 12.0

    def test_merge_preserves_emptiness(self):
        a, b = make_state(agg("SUM")), make_state(agg("SUM"))
        a.merge(b)
        assert a.result() is None
        b.update(1.0)
        a.merge(b)
        assert a.result() == 1.0


class TestAvg:
    def test_avg_ignores_nulls(self):
        s = make_state(agg("AVG"))
        for v in [2.0, None, 4.0]:
            s.update(v)
        assert s.result() == 3.0

    def test_empty_avg_is_null(self):
        assert make_state(agg("AVG")).result() is None

    def test_avg_not_scaled(self):
        s = make_state(agg("AVG"))
        s.update(2.0)
        s.update(4.0)
        assert s.scaled_result(100.0) == 3.0  # ratio: factors cancel

    def test_merge(self):
        a, b = make_state(agg("AVG")), make_state(agg("AVG"))
        a.update(1.0)
        b.update(3.0)
        a.merge(b)
        assert a.result() == 2.0


class TestMinMax:
    def test_min_max(self):
        mn, mx = make_state(agg("MIN")), make_state(agg("MAX"))
        for v in [5, None, 2, 9]:
            mn.update(v)
            mx.update(v)
        assert mn.result() == 2
        assert mx.result() == 9

    def test_empty_is_null(self):
        assert make_state(agg("MIN")).result() is None
        assert make_state(agg("MAX")).result() is None

    def test_merge(self):
        a, b = make_state(agg("MIN")), make_state(agg("MIN"))
        a.update(5)
        b.update(3)
        a.merge(b)
        assert a.result() == 3

    def test_works_on_strings(self):
        s = make_state(agg("MAX"))
        s.update("apple")
        s.update("pear")
        assert s.result() == "pear"


class TestCountDistinct:
    def test_exactish_for_small(self):
        s = make_state(agg("COUNT_DISTINCT"))
        for v in [1, 2, 2, 3, 3, 3, None]:
            s.update(v)
        assert s.result() == 3

    def test_merge_is_union(self):
        a, b = make_state(agg("COUNT_DISTINCT")), make_state(agg("COUNT_DISTINCT"))
        for i in range(50):
            a.update(i)
            b.update(i + 25)
        a.merge(b)
        assert abs(a.result() - 75) <= 3

    def test_list_values_hashable(self):
        s = make_state(agg("COUNT_DISTINCT"))
        s.update([1, 2])
        s.update([1, 2])
        s.update([2, 1])
        assert s.result() == 2

    def test_dict_values_hashable(self):
        s = make_state(agg("COUNT_DISTINCT"))
        s.update({"a": 1})
        s.update({"a": 1})
        assert s.result() == 1


class TestTopK:
    def test_topk(self):
        s = make_state(agg("TOP", k=2))
        for v in ["a"] * 5 + ["b"] * 3 + ["c"]:
            s.update(v)
        assert s.result() == [("a", 5), ("b", 3)]

    def test_scaled_counts(self):
        s = make_state(agg("TOP", k=1))
        s.update("x")
        s.update("x")
        assert s.scaled_result(3.0) == [("x", 6.0)]

    def test_merge(self):
        a, b = make_state(agg("TOP", k=2)), make_state(agg("TOP", k=2))
        a.update("a")
        b.update("a")
        b.update("b")
        a.merge(b)
        assert dict(a.result())["a"] == 2

    def test_nulls_skipped(self):
        s = make_state(agg("TOP", k=5))
        s.update(None)
        assert s.result() == []


def test_unknown_aggregate_rejected():
    with pytest.raises(ValueError):
        AggregateCall("MEDIAN", FieldRef("e", "x"))
