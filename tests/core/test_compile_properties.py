"""Property tests for the expression compilers (SQL three-valued logic).

The compiled closures in ``core/query/compile.py`` and the generated
code in ``core/query/codegen.py`` are the hot path on every host and in
ScrubCentral, so they are heavily shaped for speed; this file pins their
*semantics* against a naive tree-walking reference interpreter that
states the SQL 3VL rules as directly as possible:

* a missing field is NULL; anything arithmetic or comparative touching
  NULL is NULL;
* AND/OR are Kleene connectives evaluated left-to-right, stopping at
  the first decisive term (False for AND, True for OR); an unknown
  term only matters if no decisive term exists;
* division (and modulo) by zero is NULL, never an exception;
* runtime type mismatches in comparisons degrade to NULL, never abort
  a query.

Hypothesis generates random expression trees and random rows (with
fields missing, the common case for optional event payload members) and
checks that the closure compiler, the codegen backend and the
interpreter agree exactly — including on *which* inputs raise (unary
minus on a string is a TypeError; ``'%' % x`` is Python's string
formatting and can raise ValueError; these are validator-level errors
all three paths must surface identically).

``derandomize=True`` keeps the suite deterministic in CI: the examples
are a fixed function of the test body, not the clock.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.query.ast import (
    Between,
    BinaryOp,
    BoolOp,
    Comparison,
    FieldRef,
    InList,
    IsNull,
    Literal,
    UnaryOp,
    normalize_expr,
)
from repro.core.query.codegen import compile_row_expr, compile_row_predicate
from repro.core.query.compile import compile_expr, compile_predicate, like_to_regex

FIELDS = ("a", "b", "c", "s")


def _getter(event_type, fieldname):
    return lambda row: row.get(fieldname)


# -- the reference interpreter ------------------------------------------------


def evaluate(expr, row):
    """Tree-walking reference evaluation of *expr* over a dict row."""
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, FieldRef):
        return row.get(expr.field)
    if isinstance(expr, BinaryOp):
        a = evaluate(expr.left, row)
        b = evaluate(expr.right, row)
        if a is None or b is None:
            return None
        if expr.op in ("/", "%") and b == 0:
            return None
        return {
            "+": lambda: a + b,
            "-": lambda: a - b,
            "*": lambda: a * b,
            "/": lambda: a / b,
            "%": lambda: a % b,
        }[expr.op]()
    if isinstance(expr, UnaryOp):
        value = evaluate(expr.operand, row)
        if value is None:
            return None
        return (not value) if expr.op == "NOT" else -value
    if isinstance(expr, Comparison):
        a = evaluate(expr.left, row)
        b = evaluate(expr.right, row)
        if a is None or b is None:
            return None
        if expr.op == "LIKE":
            return like_to_regex(b).fullmatch(str(a)) is not None
        try:
            return {
                "=": lambda: a == b,
                "!=": lambda: a != b,
                "<": lambda: a < b,
                "<=": lambda: a <= b,
                ">": lambda: a > b,
                ">=": lambda: a >= b,
            }[expr.op]()
        except TypeError:
            return None
    if isinstance(expr, InList):
        value = evaluate(expr.expr, row)
        if value is None:
            return None
        try:
            hit = any(value == lit.value for lit in expr.values)
        except TypeError:
            return None
        if not hit and any(lit.value is None for lit in expr.values):
            return None
        return (not hit) if expr.negated else hit
    if isinstance(expr, Between):
        value = evaluate(expr.expr, row)
        lo = evaluate(expr.low, row)
        hi = evaluate(expr.high, row)
        if value is None or lo is None or hi is None:
            return None
        try:
            hit = lo <= value and value <= hi
        except TypeError:
            return None
        return (not hit) if expr.negated else hit
    if isinstance(expr, IsNull):
        null = evaluate(expr.expr, row) is None
        return (not null) if expr.negated else null
    if isinstance(expr, BoolOp):
        # Left-to-right with a stop at the first decisive term, matching
        # both compilers: terms after the decision are never evaluated,
        # so an error lurking there never surfaces.
        decisive = False if expr.op == "AND" else True
        unknown = False
        for term in expr.terms:
            v = evaluate(term, row)
            if v is decisive:
                return decisive
            if v is None:
                unknown = True
        return None if unknown else (not decisive)
    raise AssertionError(f"unhandled node {type(expr).__name__}")


def _outcome(fn):
    """Value, or the kind of error evaluation raised (validator-level
    typing errors — TypeError from e.g. ``-'a'``, ValueError from
    string-formatting ``%`` — which every path must surface alike)."""
    try:
        return ("value", fn())
    except (TypeError, ValueError) as exc:
        return ("error", type(exc).__name__)


# -- strategies ---------------------------------------------------------------

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-50, max_value=50),
    st.floats(min_value=-8.0, max_value=8.0, allow_nan=False),
    st.text(alphabet="ab%_", max_size=4),
)

literals = st.builds(Literal, scalars)
field_refs = st.builds(FieldRef, st.none(), st.sampled_from(FIELDS))
leaves = st.one_of(literals, field_refs)


def _extend(children):
    return st.one_of(
        st.builds(
            BinaryOp, st.sampled_from(["+", "-", "*", "/", "%"]), children, children
        ),
        st.builds(UnaryOp, st.sampled_from(["-", "NOT"]), children),
        st.builds(
            Comparison,
            st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
            children,
            children,
        ),
        # LIKE patterns must be string literals (the validator enforces it).
        st.builds(
            Comparison,
            st.just("LIKE"),
            children,
            st.builds(Literal, st.text(alphabet="ab%_", max_size=4)),
        ),
        st.builds(
            InList,
            children,
            st.lists(literals, min_size=1, max_size=4).map(tuple),
            st.booleans(),
        ),
        st.builds(Between, children, children, children, st.booleans()),
        st.builds(IsNull, children, st.booleans()),
        st.builds(
            lambda op, terms: BoolOp(op, tuple(terms)),
            st.sampled_from(["AND", "OR"]),
            st.lists(children, min_size=2, max_size=4),
        ),
    )


expressions = st.recursive(leaves, _extend, max_leaves=20)
rows = st.dictionaries(st.sampled_from(FIELDS), scalars, max_size=len(FIELDS))


# -- the differential properties ----------------------------------------------


@settings(max_examples=300, deadline=None, derandomize=True)
@given(expr=expressions, row=rows)
def test_compiled_matches_reference(expr, row):
    """Three-way: interpreter, closure compiler and codegen backend
    produce identical values *and* identical error kinds."""
    compiled = compile_expr(expr, _getter)
    generated = compile_row_expr(expr)
    reference = _outcome(lambda: evaluate(expr, row))
    assert _outcome(lambda: compiled(row)) == reference
    assert _outcome(lambda: generated(row)) == reference


@settings(max_examples=200, deadline=None, derandomize=True)
@given(expr=expressions, row=rows)
def test_predicate_is_definitely_true_semantics(expr, row):
    """WHERE passes a row iff the expression is *definitely* True."""
    predicate = compile_predicate(expr, _getter)
    generated = compile_row_predicate(expr)
    outcome = _outcome(lambda: evaluate(expr, row))
    if outcome[0] == "error":
        return  # all paths raise; covered by the differential property
    assert predicate(row) is (outcome[1] is True)
    assert generated(row) is (outcome[1] is True)


@settings(max_examples=200, deadline=None, derandomize=True)
@given(expr=expressions, row=rows)
def test_normalize_preserves_semantics(expr, row):
    """AST normalization (nested AND/OR flattening for the compilation
    cache) must never change what an expression evaluates to."""
    normalized = normalize_expr(expr)
    original = compile_expr(expr, _getter)
    flattened = compile_expr(normalized, _getter)
    generated = compile_row_expr(normalized)
    outcome = _outcome(lambda: original(row))
    assert _outcome(lambda: flattened(row)) == outcome
    assert _outcome(lambda: generated(row)) == outcome
    # Normalization is idempotent — a cache keyed on it needs that.
    assert normalize_expr(normalized) == normalized


# -- pinned 3VL corner cases --------------------------------------------------


def test_kleene_truth_tables_exhaustive():
    """AND/OR over every combination of {True, False, NULL} up to width 3."""
    for op in ("AND", "OR"):
        for width in (2, 3):
            for combo in itertools.product([True, False, None], repeat=width):
                expr = BoolOp(op, tuple(Literal(v) for v in combo))
                fn = compile_expr(expr, _getter)
                gen = compile_row_expr(expr)
                if op == "AND":
                    expected = (
                        False
                        if False in combo
                        else (None if None in combo else True)
                    )
                else:
                    expected = (
                        True
                        if True in combo
                        else (None if None in combo else False)
                    )
                assert fn({}) is expected, (op, combo)
                assert gen({}) is expected, (op, combo)


def test_division_and_modulo_by_zero_are_null():
    for op in ("/", "%"):
        for numerator in (0, 7, -3, 2.5):
            expr = BinaryOp(op, Literal(numerator), Literal(0))
            assert compile_expr(expr, _getter)({}) is None
            assert compile_row_expr(expr)({}) is None
        # NULL numerator over zero denominator is still NULL, not an error.
        expr = BinaryOp(op, FieldRef(None, "a"), Literal(0))
        assert compile_expr(expr, _getter)({}) is None
        assert compile_row_expr(expr)({}) is None


def test_missing_field_propagates_null_through_arithmetic():
    expr = BinaryOp("+", FieldRef(None, "a"), Literal(1))
    for fn in (compile_expr(expr, _getter), compile_row_expr(expr)):
        assert fn({}) is None
        assert fn({"a": 2}) == 3


def test_in_list_with_null_member_is_unknown_on_miss():
    expr = InList(FieldRef(None, "a"), (Literal(1), Literal(None)))
    for fn in (compile_expr(expr, _getter), compile_row_expr(expr)):
        assert fn({"a": 1}) is True  # hit beats the NULL member
        assert fn({"a": 2}) is None  # miss with NULL in the list: UNKNOWN
        assert fn({}) is None
