"""Tests for the multi-stage sampling estimators (paper Eqs. 1-3)."""

import math
import random

import pytest

from repro.core.approx import (
    MachineSample,
    estimate_avg,
    estimate_count,
    estimate_sum,
)


class TestMachineSample:
    def test_from_values(self):
        s = MachineSample.from_values(10, [1.0, 2.0, 3.0])
        assert s.count == 3
        assert s.total == 6.0
        assert s.estimated_total == pytest.approx(20.0)  # (10/3)*6

    def test_value_variance(self):
        s = MachineSample.from_values(10, [1.0, 2.0, 3.0])
        assert s.value_variance == pytest.approx(1.0)

    def test_variance_of_singleton_zero(self):
        assert MachineSample.from_values(5, [2.0]).value_variance == 0.0

    def test_empty_sample(self):
        s = MachineSample.from_values(5, [])
        assert s.estimated_total == 0.0

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            MachineSample(machine_total=2, count=3, total=0.0, sum_sq=0.0)
        with pytest.raises(ValueError):
            MachineSample(machine_total=-1, count=0, total=0.0, sum_sq=0.0)


class TestEstimateSum:
    def test_exhaustive_is_exact(self):
        samples = [
            MachineSample.from_values(3, [1.0, 2.0, 3.0]),
            MachineSample.from_values(2, [4.0, 5.0]),
        ]
        est = estimate_sum(samples, total_machines=2)
        assert est.estimate == pytest.approx(15.0)
        assert est.error_bound == 0.0

    def test_event_sampling_scales_up(self):
        # Each machine saw 100 events, sampled 10, each value 1.0.
        samples = [MachineSample.from_values(100, [1.0] * 10) for _ in range(4)]
        est = estimate_sum(samples, total_machines=4)
        assert est.estimate == pytest.approx(400.0)
        # Values are constant -> within-machine variance 0 -> exact bound.
        assert est.error_bound == pytest.approx(0.0)

    def test_machine_sampling_scales_up(self):
        samples = [MachineSample.from_values(10, [1.0] * 10) for _ in range(5)]
        est = estimate_sum(samples, total_machines=20)
        assert est.estimate == pytest.approx(200.0)
        # Identical machines -> zero machine-stage variance.
        assert est.error_bound == pytest.approx(0.0)

    def test_single_machine_sample_infinite_bound(self):
        samples = [MachineSample.from_values(100, [1.0] * 5)]
        est = estimate_sum(samples, total_machines=10)
        assert math.isinf(est.error_bound)

    def test_no_samples(self):
        est = estimate_sum([], total_machines=5)
        assert est.estimate == 0.0
        assert math.isinf(est.error_bound)

    def test_machines_exceed_population_rejected(self):
        with pytest.raises(ValueError):
            estimate_sum([MachineSample.from_values(1, [1.0])] * 3, total_machines=2)

    def test_confidence_widens_interval(self):
        rng = random.Random(5)
        samples = [
            MachineSample.from_values(50, [rng.uniform(0, 2) for _ in range(10)])
            for _ in range(8)
        ]
        e95 = estimate_sum(samples, total_machines=20, confidence=0.95)
        e99 = estimate_sum(samples, total_machines=20, confidence=0.99)
        assert e99.error_bound > e95.error_bound
        assert e95.estimate == e99.estimate

    def test_coverage_simulation(self):
        """~95% of 95% CIs should contain the true total (allow slack)."""
        rng = random.Random(42)
        big_n, n_sampled, events_per, keep = 40, 12, 60, 20
        trials, covered = 120, 0
        for _ in range(trials):
            machines = [
                [rng.gauss(10.0, 3.0) for _ in range(events_per)]
                for _ in range(big_n)
            ]
            truth = sum(sum(m) for m in machines)
            chosen = rng.sample(range(big_n), n_sampled)
            samples = [
                MachineSample.from_values(events_per, rng.sample(machines[i], keep))
                for i in chosen
            ]
            est = estimate_sum(samples, total_machines=big_n)
            if est.low <= truth <= est.high:
                covered += 1
        assert covered / trials >= 0.85

    def test_relative_error_property(self):
        est = estimate_sum(
            [MachineSample.from_values(4, [1.0, 2.0]) for _ in range(3)],
            total_machines=3,
        )
        assert est.relative_error == est.error_bound / est.estimate


class TestEstimateCount:
    def test_full_population_exact(self):
        est = estimate_count([10, 20, 30], total_machines=3)
        assert est.estimate == 60.0
        assert est.error_bound == 0.0

    def test_host_sampled_scales(self):
        est = estimate_count([10, 10], total_machines=8)
        assert est.estimate == pytest.approx(80.0)

    def test_event_rate_scales(self):
        est = estimate_count([10, 10], total_machines=2, event_sampling_rate=0.1)
        assert est.estimate == pytest.approx(200.0)

    def test_event_rate_error_folded_into_machine_stage(self):
        # Varying scaled per-machine counts carry the event-stage noise.
        est = estimate_count(
            [8, 12, 10, 14], total_machines=8, event_sampling_rate=0.1
        )
        assert est.estimate == pytest.approx(880.0)
        assert est.error_bound > 0

    def test_identical_machines_zero_variance(self):
        est = estimate_count([5, 5, 5], total_machines=9)
        assert est.error_bound == pytest.approx(0.0)

    def test_empty(self):
        est = estimate_count([], total_machines=4)
        assert est.estimate == 0.0


class TestEstimateAvg:
    def test_ratio(self):
        s = estimate_sum(
            [MachineSample.from_values(2, [2.0, 4.0])] * 2, total_machines=2
        )
        c = estimate_count([2, 2], total_machines=2)
        avg = estimate_avg(s, c)
        assert avg.estimate == pytest.approx(3.0)
        assert avg.error_bound == pytest.approx(0.0)

    def test_zero_count(self):
        s = estimate_sum([], total_machines=1)
        c = estimate_count([], total_machines=1)
        avg = estimate_avg(s, c)
        assert math.isinf(avg.error_bound)

    def test_error_propagation_positive(self):
        rng = random.Random(9)
        samples = [
            MachineSample.from_values(30, [rng.uniform(0, 4) for _ in range(10)])
            for _ in range(6)
        ]
        s = estimate_sum(samples, total_machines=12)
        c = estimate_count([30] * 6, total_machines=12)
        avg = estimate_avg(s, c)
        assert avg.error_bound > 0
        assert avg.estimate == pytest.approx(s.estimate / c.estimate)


class TestApproxEstimateFormatting:
    def test_str(self):
        est = estimate_count([5, 5], total_machines=2)
        assert "95% CI" in str(est)
        assert est.low <= est.estimate <= est.high
