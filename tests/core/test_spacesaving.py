"""Tests for the Space-Saving TOP-K summary, including its guarantees."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.approx import SpaceSaving


class TestBasics:
    def test_exact_when_under_capacity(self):
        ss = SpaceSaving(capacity=10)
        stream = ["a"] * 5 + ["b"] * 3 + ["c"] * 1
        ss.update(stream)
        assert ss.estimate("a") == 5
        assert ss.estimate("b") == 3
        assert ss.estimate("c") == 1
        assert all(t.error == 0 for t in ss.top(3))

    def test_top_ordering(self):
        ss = SpaceSaving(capacity=10)
        ss.update(["x"] * 7 + ["y"] * 4 + ["z"] * 2)
        assert [t.item for t in ss.top(2)] == ["x", "y"]

    def test_unmonitored_item_estimate_zero(self):
        ss = SpaceSaving(capacity=2)
        ss.update(["a", "b"])
        assert ss.estimate("zzz") == 0

    def test_total_counts_offers(self):
        ss = SpaceSaving(capacity=2)
        ss.update(["a", "b", "c", "a"])
        assert ss.total == 4

    def test_offer_with_count(self):
        ss = SpaceSaving(capacity=4)
        ss.offer("a", count=10)
        ss.offer("a", count=5)
        assert ss.estimate("a") == 15

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            SpaceSaving(0)
        ss = SpaceSaving(1)
        with pytest.raises(ValueError):
            ss.offer("a", count=0)

    def test_capacity_bound_holds(self):
        ss = SpaceSaving(capacity=5)
        ss.update(str(i) for i in range(1000))
        assert len(ss) == 5

    def test_top_k_larger_than_monitored(self):
        ss = SpaceSaving(capacity=3)
        ss.update(["a", "b"])
        assert len(ss.top(10)) == 2

    def test_top_zero(self):
        ss = SpaceSaving(capacity=3)
        ss.update(["a"])
        assert ss.top(0) == []


class TestGuarantees:
    """The two Space-Saving guarantees from Metwally et al. (paper [36])."""

    def _zipf_stream(self, n, universe, seed, alpha=1.3):
        rng = random.Random(seed)
        weights = [1.0 / (i + 1) ** alpha for i in range(universe)]
        return rng.choices(range(universe), weights=weights, k=n)

    def test_count_bounds(self):
        """count - error <= true <= count for every monitored item."""
        stream = self._zipf_stream(5000, 300, seed=1)
        truth = Counter(stream)
        ss = SpaceSaving(capacity=50)
        ss.update(stream)
        for t in ss.top(50):
            assert t.guaranteed_count <= truth[t.item] <= t.count

    def test_heavy_hitters_present(self):
        """Any item with frequency > N/capacity must be monitored."""
        stream = self._zipf_stream(8000, 500, seed=2)
        truth = Counter(stream)
        capacity = 40
        ss = SpaceSaving(capacity=capacity)
        ss.update(stream)
        threshold = len(stream) / capacity
        monitored = {t.item for t in ss.top(capacity)}
        for item, count in truth.items():
            if count > threshold:
                assert item in monitored, (item, count, threshold)

    def test_overestimation_bounded_by_n_over_m(self):
        """error_i <= N/capacity (the classic space-saving bound)."""
        stream = self._zipf_stream(6000, 400, seed=3)
        capacity = 60
        ss = SpaceSaving(capacity=capacity)
        ss.update(stream)
        bound = len(stream) / capacity
        for t in ss.top(capacity):
            assert t.error <= bound

    def test_guaranteed_top_is_truly_top(self):
        stream = self._zipf_stream(10000, 200, seed=4)
        truth = Counter(stream)
        ss = SpaceSaving(capacity=100)
        ss.update(stream)
        k = 10
        true_top = {item for item, _ in truth.most_common(k)}
        for t in ss.guaranteed_top(k):
            assert t.item in true_top


class TestMerge:
    def test_merge_counts_upper_bound(self):
        a = SpaceSaving(capacity=50)
        b = SpaceSaving(capacity=50)
        stream_a = ["x"] * 30 + ["y"] * 10
        stream_b = ["x"] * 5 + ["z"] * 20
        a.update(stream_a)
        b.update(stream_b)
        a.merge(b)
        truth = Counter(stream_a + stream_b)
        for t in a.top(50):
            assert truth[t.item] <= t.count
            assert t.guaranteed_count <= truth[t.item]

    def test_merge_total(self):
        a, b = SpaceSaving(10), SpaceSaving(10)
        a.update(["p"] * 3)
        b.update(["q"] * 4)
        a.merge(b)
        assert a.total == 7


@settings(max_examples=50, deadline=None)
@given(
    stream=st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=500),
    capacity=st.integers(min_value=1, max_value=40),
)
def test_property_count_is_upper_bound(stream, capacity):
    truth = Counter(stream)
    ss = SpaceSaving(capacity)
    ss.update(stream)
    for t in ss.top(capacity):
        assert t.count >= truth[t.item]
        assert t.guaranteed_count <= truth[t.item]
    assert len(ss) <= capacity
    assert ss.total == len(stream)
