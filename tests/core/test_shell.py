"""Tests for the interactive Scrub shell (scripted, non-interactive)."""

import io

import pytest

from repro.adplatform import spam_scenario
from repro.tools import SCENARIOS, ScrubShell


@pytest.fixture(scope="module")
def shell_and_out():
    scenario = spam_scenario(users=80, pageview_rate=5.0)
    out = io.StringIO()
    shell = ScrubShell(scenario, out=out)
    return shell, out


def run_lines(shell, out, *lines):
    start = out.tell()
    for line in lines:
        keep_going = shell.handle(line)
    out.seek(start)
    return out.read(), keep_going


class TestShellCommands:
    def test_events_lists_schemas(self, shell_and_out):
        shell, out = shell_and_out
        text, _ = run_lines(shell, out, "\\events")
        assert "bid(" in text and "exclusion(" in text

    def test_hosts_lists_services(self, shell_and_out):
        shell, out = shell_and_out
        text, _ = run_lines(shell, out, "\\hosts")
        assert "BidServers" in text
        assert "profilestore-0" in text

    def test_run_advances_time(self, shell_and_out):
        shell, out = shell_and_out
        before = shell.cluster.now
        text, _ = run_lines(shell, out, "\\run 3")
        assert shell.cluster.now == pytest.approx(before + 3.0)
        assert "t =" in text

    def test_unknown_command(self, shell_and_out):
        shell, out = shell_and_out
        text, _ = run_lines(shell, out, "\\frobnicate")
        assert "unknown command" in text

    def test_quit_stops(self, shell_and_out):
        shell, out = shell_and_out
        _, keep_going = run_lines(shell, out, "\\quit")
        assert keep_going is False

    def test_blank_and_comment_lines_ignored(self, shell_and_out):
        shell, out = shell_and_out
        text, keep_going = run_lines(shell, out, "", "   ", "-- a comment")
        assert keep_going is True
        assert text == ""


class TestShellQueries:
    def test_query_runs_and_prints_windows(self, shell_and_out):
        shell, out = shell_and_out
        text, _ = run_lines(
            shell, out,
            "select COUNT(*) from bid window 10s duration 20s;",
        )
        assert "installed on" in text
        assert "-- window" in text
        assert shell.last_results is not None

    def test_csv_and_json_of_last_result(self, shell_and_out):
        shell, out = shell_and_out
        run_lines(shell, out, "select COUNT(*) from bid window 10s duration 10s;")
        text, _ = run_lines(shell, out, "\\csv")
        assert text.splitlines()[0].startswith("window_start,")
        text, _ = run_lines(shell, out, "\\json")
        assert '"query_id"' in text

    def test_query_error_reported_not_raised(self, shell_and_out):
        shell, out = shell_and_out
        text, keep_going = run_lines(shell, out, "select from nowhere;")
        assert "error:" in text
        assert keep_going is True

    def test_validation_error_reported(self, shell_and_out):
        shell, out = shell_and_out
        text, _ = run_lines(shell, out, "select COUNT(*) from nosuchevent;")
        assert "error:" in text and "unknown event type" in text


def test_all_scenarios_constructible():
    for name, factory in SCENARIOS.items():
        scenario = factory()
        assert scenario.cluster.hosts(), name
