"""Tests for the interactive Scrub shell (scripted, non-interactive)."""

import io

import pytest

from repro.adplatform import spam_scenario
from repro.tools import SCENARIOS, ScrubShell


@pytest.fixture(scope="module")
def shell_and_out():
    scenario = spam_scenario(users=80, pageview_rate=5.0)
    out = io.StringIO()
    shell = ScrubShell(scenario, out=out)
    return shell, out


def run_lines(shell, out, *lines):
    start = out.tell()
    for line in lines:
        keep_going = shell.handle(line)
    out.seek(start)
    return out.read(), keep_going


class TestShellCommands:
    def test_events_lists_schemas(self, shell_and_out):
        shell, out = shell_and_out
        text, _ = run_lines(shell, out, "\\events")
        assert "bid(" in text and "exclusion(" in text

    def test_hosts_lists_services(self, shell_and_out):
        shell, out = shell_and_out
        text, _ = run_lines(shell, out, "\\hosts")
        assert "BidServers" in text
        assert "profilestore-0" in text

    def test_run_advances_time(self, shell_and_out):
        shell, out = shell_and_out
        before = shell.cluster.now
        text, _ = run_lines(shell, out, "\\run 3")
        assert shell.cluster.now == pytest.approx(before + 3.0)
        assert "t =" in text

    def test_unknown_command(self, shell_and_out):
        shell, out = shell_and_out
        text, _ = run_lines(shell, out, "\\frobnicate")
        assert "unknown command" in text

    def test_quit_stops(self, shell_and_out):
        shell, out = shell_and_out
        _, keep_going = run_lines(shell, out, "\\quit")
        assert keep_going is False

    def test_blank_and_comment_lines_ignored(self, shell_and_out):
        shell, out = shell_and_out
        text, keep_going = run_lines(shell, out, "", "   ", "-- a comment")
        assert keep_going is True
        assert text == ""


class TestShellQueries:
    def test_query_runs_and_prints_windows(self, shell_and_out):
        shell, out = shell_and_out
        text, _ = run_lines(
            shell, out,
            "select COUNT(*) from bid window 10s duration 20s;",
        )
        assert "installed on" in text
        assert "-- window" in text
        assert shell.last_results is not None

    def test_csv_and_json_of_last_result(self, shell_and_out):
        shell, out = shell_and_out
        run_lines(shell, out, "select COUNT(*) from bid window 10s duration 10s;")
        text, _ = run_lines(shell, out, "\\csv")
        assert text.splitlines()[0].startswith("window_start,")
        text, _ = run_lines(shell, out, "\\json")
        assert '"query_id"' in text

    def test_query_error_reported_not_raised(self, shell_and_out):
        shell, out = shell_and_out
        text, keep_going = run_lines(shell, out, "select from nowhere;")
        assert "error:" in text
        assert keep_going is True

    def test_validation_error_reported(self, shell_and_out):
        shell, out = shell_and_out
        text, _ = run_lines(shell, out, "select COUNT(*) from nosuchevent;")
        assert "error:" in text and "unknown event type" in text


def test_all_scenarios_constructible():
    for name, factory in SCENARIOS.items():
        scenario = factory()
        assert scenario.cluster.hosts(), name


def _make_live_shell(monkeypatch, payload):
    import repro.live.client as live_client
    from repro.tools.shell import LiveShell

    class StubClient:
        def __init__(self, address):
            pass

        def stats(self):
            return payload

    monkeypatch.setattr(live_client, "ControlClient", StubClient)
    out = io.StringIO()
    return LiveShell(("127.0.0.1", 0), out=out), out


class TestLiveShellRates:
    PAYLOAD = {
        "controllers": {
            "q00001": {
                "state": "tracking",
                "version": 3,
                "host_count": 8,
                "total_hosts": 8,
                "event_rate": 0.25,
                "target_relative_error": 0.10,
                "achieved_relative_error": 0.049,
                "rate_limited": None,
                "frozen_reason": None,
            },
            "q00002": {
                "state": "rate_limited",
                "version": 5,
                "host_count": 4,
                "total_hosts": 16,
                "event_rate": 0.0009765625,
                "target_relative_error": 0.05,
                "achieved_relative_error": None,
                "rate_limited": {
                    "reason": "impact-budget",
                    "achievable_relative_error": 0.42,
                    "cap_event_rate": 0.0009765625,
                    "target_relative_error": 0.05,
                },
                "frozen_reason": None,
            },
        }
    }

    def make_shell(self, monkeypatch, payload):
        return _make_live_shell(monkeypatch, payload)

    def test_rates_renders_controllers(self, monkeypatch):
        shell, out = self.make_shell(monkeypatch, self.PAYLOAD)
        text, _ = run_lines(shell, out, "\\rates")
        assert "q00001" in text and "tracking" in text
        assert "0.2500" in text and "10.0%" in text and "4.9%" in text
        assert "q00002" in text and "rate_limited" in text
        assert "impact-budget: achievable 42.0%" in text
        assert "4/16" in text

    def test_rates_empty(self, monkeypatch):
        shell, out = self.make_shell(monkeypatch, {})
        text, _ = run_lines(shell, out, "\\rates")
        assert "no TARGET CI queries" in text


class TestLiveShellPool:
    PAYLOAD = {
        "pool": {
            "workers": 2,
            "alive": 2,
            "respawns": 1,
            "respawn_log": [{"shard": 1, "generation": 1, "reason": "killed"}],
            "transport": "shm",
            "ring_spills": 3,
            "ring_bytes_in_place": 59_400,
            "rings": [
                {
                    "shard": 0, "generation": 0, "transport": "shm",
                    "depth": 128, "high_water": 24_750,
                    "capacity": 1_048_576, "descriptors": 42,
                    "bytes_in_place": 31_000, "spills": 0,
                },
                {
                    "shard": 1, "generation": 1, "transport": "shm",
                    "depth": 0, "high_water": 9_000,
                    "capacity": 1_048_576, "descriptors": 17,
                    "bytes_in_place": 28_400, "spills": 3,
                },
            ],
        }
    }

    def test_pool_renders_transport_and_rings(self, monkeypatch):
        shell, out = _make_live_shell(monkeypatch, self.PAYLOAD)
        text, _ = run_lines(shell, out, "\\pool")
        assert "transport shm" in text
        assert "2/2 worker(s) alive" in text
        assert "1 respawn(s)" in text
        assert "3 ring spill(s)" in text
        assert "59400 byte(s) shipped in place" in text
        # Per-worker rows: shard, generation, depth, high-water, spills.
        assert "24750" in text and "9000" in text
        assert "1048576" in text

    def test_pool_serial_daemon(self, monkeypatch):
        shell, out = _make_live_shell(monkeypatch, {"pool": None})
        text, _ = run_lines(shell, out, "\\pool")
        assert "central runs serial" in text

    def test_pool_in_help(self, monkeypatch):
        shell, out = _make_live_shell(monkeypatch, {})
        text, _ = run_lines(shell, out, "\\help")
        assert "\\pool" in text
