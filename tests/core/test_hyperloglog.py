"""Tests for the HyperLogLog COUNT_DISTINCT sketch."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.approx import HyperLogLog


class TestAccuracy:
    @pytest.mark.parametrize("true_n", [10, 100, 1_000, 20_000])
    def test_relative_error_within_bounds(self, true_n):
        hll = HyperLogLog(precision=12)
        for i in range(true_n):
            hll.add(f"user-{i}")
        estimate = hll.count()
        # Standard error at p=12 is ~1.6%; 6 sigma is a safely loose bound.
        assert abs(estimate - true_n) <= max(6 * hll.standard_error * true_n, 3)

    def test_small_cardinalities_near_exact(self):
        hll = HyperLogLog(precision=12)
        for i in range(5):
            hll.add(i)
        assert hll.count() == 5

    def test_duplicates_not_double_counted(self):
        hll = HyperLogLog()
        for _ in range(1000):
            hll.add("same")
        assert hll.count() == 1

    def test_empty(self):
        assert HyperLogLog().count() == 0

    def test_mixed_types_hash_distinctly(self):
        hll = HyperLogLog()
        hll.update([1, 1.5, "1", b"1", True, None])
        assert 4 <= hll.count() <= 8


class TestStructure:
    def test_precision_bounds(self):
        with pytest.raises(ValueError):
            HyperLogLog(precision=3)
        with pytest.raises(ValueError):
            HyperLogLog(precision=19)

    def test_register_count(self):
        assert HyperLogLog(precision=10).register_count == 1024

    def test_standard_error_formula(self):
        hll = HyperLogLog(precision=12)
        assert hll.standard_error == pytest.approx(1.04 / 64.0)

    def test_hash_stability(self):
        """Two sketches built identically agree exactly (stable hashing)."""
        a, b = HyperLogLog(), HyperLogLog()
        for i in range(500):
            a.add(f"k{i}")
            b.add(f"k{i}")
        assert a.count() == b.count()
        assert a._registers == b._registers


class TestMerge:
    def test_merge_equals_union(self):
        a, b, union = HyperLogLog(), HyperLogLog(), HyperLogLog()
        for i in range(1000):
            a.add(f"a{i}")
            union.add(f"a{i}")
        for i in range(1000):
            b.add(f"b{i}")
            union.add(f"b{i}")
        a.merge(b)
        assert a.count() == union.count()

    def test_merge_idempotent(self):
        a, b = HyperLogLog(), HyperLogLog()
        for i in range(200):
            a.add(i)
            b.add(i)
        before = a.count()
        a.merge(b)
        assert a.count() == before

    def test_merge_precision_mismatch(self):
        with pytest.raises(ValueError, match="precision"):
            HyperLogLog(10).merge(HyperLogLog(12))

    def test_copy_independent(self):
        a = HyperLogLog()
        a.add("x")
        c = a.copy()
        c.add("y")
        assert a.count() == 1
        assert c.count() == 2


@settings(max_examples=30, deadline=None)
@given(
    items_a=st.sets(st.integers(min_value=0, max_value=10_000), max_size=300),
    items_b=st.sets(st.integers(min_value=0, max_value=10_000), max_size=300),
)
def test_property_merge_commutes(items_a, items_b):
    ab, ba = HyperLogLog(), HyperLogLog()
    other_a, other_b = HyperLogLog(), HyperLogLog()
    for i in items_a:
        ab.add(i)
        other_a.add(i)
    for i in items_b:
        ba.add(i)
        other_b.add(i)
    ab.merge(other_b)
    ba.merge(other_a)
    assert ab.count() == ba.count()
