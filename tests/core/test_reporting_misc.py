"""Tests for the reporting helper and miscellaneous public surfaces."""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.central.window import SlidingWindowAssigner, TumblingWindowAssigner
from repro.reporting import ExperimentReport


class TestExperimentReport:
    def test_table_alignment(self):
        report = ExperimentReport("X1", "demo")
        report.table("t", ["name", "value"], [["a", 1], ["longer", 2.5]])
        text = report.text()
        assert "== X1: demo ==" in text
        lines = text.splitlines()
        header = next(line for line in lines if "name" in line)
        separator = lines[lines.index(header) + 1]
        assert len(header) == len(separator)

    def test_float_formatting(self):
        report = ExperimentReport("X2", "demo")
        report.table("t", ["v"], [[0.123456], [12345.6789], [1e-9], [0.0]])
        text = report.text()
        assert "0.1235" in text
        assert "1.235e+04" in text or "12345" in text.replace(",", "")
        assert "1e-09" in text
        assert "\n        0\n" in text or " 0\n" in text

    def test_emit_writes_artifact(self, tmp_path):
        report = ExperimentReport("X3", "demo")
        report.note("a note")
        report.table("t", ["v"], [[1]])
        path = report.emit(directory=str(tmp_path))
        assert os.path.basename(path) == "X3.txt"
        with open(path) as fh:
            content = fh.read()
        assert "a note" in content

    def test_empty_table(self):
        report = ExperimentReport("X4", "demo")
        report.table("t", ["a", "b"], [])
        assert "a" in report.text()


class TestWindowAssignerProperties:
    @settings(max_examples=200, deadline=None)
    @given(
        ts=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        length_slide=st.sampled_from([(10.0, 5.0), (10.0, 2.0), (60.0, 15.0)]),
    )
    def test_sliding_event_in_exactly_length_over_slide_windows(
        self, ts, length_slide
    ):
        length, slide = length_slide
        assigner = SlidingWindowAssigner(length, slide=slide)
        windows = list(assigner.assign(ts))
        # Every assigned window covers the timestamp...
        for index in windows:
            assert assigner.start_of(index) <= ts < assigner.end_of(index)
        # ...and the count is length/slide (fewer near t=0 where negative
        # indices would be needed).
        expected = int(length // slide)
        assert len(windows) <= expected
        if ts >= length:
            assert len(windows) == expected

    @settings(max_examples=200, deadline=None)
    @given(ts=st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
    def test_tumbling_partition(self, ts):
        assigner = TumblingWindowAssigner(10.0)
        (index,) = assigner.assign(ts)
        assert assigner.start_of(index) <= ts < assigner.end_of(index)

    @settings(max_examples=100, deadline=None)
    @given(
        a=st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
        b=st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
    )
    def test_tumbling_same_window_iff_same_bucket(self, a, b):
        assigner = TumblingWindowAssigner(7.0)
        (wa,) = assigner.assign(a)
        (wb,) = assigner.assign(b)
        assert (wa == wb) == (int(a // 7.0) == int(b // 7.0))


class TestPartialAggregateWireSize:
    def test_partials_counted_in_batch_size(self):
        from repro.core.agent.transport import EventBatch, PartialAggregate

        empty = EventBatch(host="h", query_id="q", events=[])
        with_partials = EventBatch(
            host="h", query_id="q", events=[],
            partials=[
                PartialAggregate("bid", 0, (1,), (5, (2.0, True))),
                PartialAggregate("bid", 0, ("somekey",), (3,)),
            ],
        )
        assert with_partials.wire_size() > empty.wire_size()

    def test_string_keys_cost_their_length(self):
        from repro.core.agent.transport import EventBatch, PartialAggregate

        short = EventBatch(host="h", query_id="q", events=[], partials=[
            PartialAggregate("bid", 0, ("a",), (1,))
        ])
        long = EventBatch(host="h", query_id="q", events=[], partials=[
            PartialAggregate("bid", 0, ("a" * 100,), (1,))
        ])
        assert long.wire_size() > short.wire_size() + 90
