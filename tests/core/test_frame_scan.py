"""Differential tests for the zero-copy frame scanner.

`scan_batch_shards` must be *provably* interchangeable with
decode-then-partition: for any encoded batch, slicing by byte extents
and decoding per shard yields exactly the events `decode_batch` would
have routed there via ``request_id % n`` — same events, same order
within a shard — and `scan_batch` reads the same header fields
(request id, timestamp, host) the decoded events carry.  This is the
correctness wall the ShardPool's frame ingest stands behind
(docs/SCALING.md §"Zero-copy shard ingest"): the benchmark numbers are
only believed because these properties hold for arbitrary payloads.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.agent.transport import (
    EventBatch,
    PartialAggregate,
    decode_full_batch,
    encode_full_batch,
    peek_full_batch_host,
    scan_full_batch,
)
from repro.core.events import Event
from repro.core.events.encoding import (
    decode_batch,
    decode_event_frames,
    encode_batch,
    encode_binary,
    scan_batch,
    scan_batch_shards,
)

# Arbitrary nested payloads, same shape as the codec round-trip suite.
_scalar = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**62), max_value=2**62),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=40),
)
_value = st.recursive(
    _scalar,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(min_size=1, max_size=10), children, max_size=4),
    ),
    max_leaves=15,
)
_payload = st.dictionaries(st.text(min_size=1, max_size=15), _value, max_size=6)

# Request ids include negatives: the header is a *signed* i64 (`<q`), and
# Python's % gives the same non-negative shard for both ingest paths.
_events = st.lists(
    st.tuples(
        _payload,
        st.integers(min_value=-(2**62), max_value=2**62),  # request_id
        st.floats(min_value=0, max_value=1e9, allow_nan=False),  # timestamp
        st.sampled_from(["h1", "h2", "web-042.sjc"]),
    ),
    max_size=12,
).map(
    lambda rows: [
        Event("bid", payload, rid, ts, host)
        for payload, rid, ts, host in rows
    ]
)


def _partition_by_decode(events: list[Event], n: int) -> list[list[Event]]:
    """The reference semantics: decode everything, then shard."""
    shards: list[list[Event]] = [[] for _ in range(n)]
    for event in events:
        shards[event.request_id % n].append(event)
    return shards


@settings(max_examples=150, deadline=None)
@given(events=_events, n=st.integers(min_value=1, max_value=5))
def test_shard_slices_equal_decode_then_partition(events, n):
    buf = encode_batch(events)
    expected = _partition_by_decode(decode_batch(buf), n)
    sliced = scan_batch_shards(buf, n)
    assert len(sliced) == n
    for shard_slices, shard_events in zip(sliced, expected):
        payload = b"".join(shard_slices)
        assert decode_event_frames(payload, len(shard_slices)) == shard_events


@settings(max_examples=150, deadline=None)
@given(events=_events)
def test_scan_reads_the_same_headers_the_decoder_does(events):
    buf = encode_batch(events)
    frames, end = scan_batch(buf)
    assert end == len(buf)
    decoded = decode_batch(buf)
    assert [(f[0], f[1], f[2]) for f in frames] == [
        (e.request_id, e.timestamp, e.host) for e in decoded
    ]
    # Byte extents are exact and contiguous: each extent decodes to its
    # event alone, and the extents tile the batch body with no gaps.
    pos = 4  # count prefix
    for frame, event in zip(frames, decoded):
        _rid, _ts, _host, start, stop = frame
        assert start == pos
        assert decode_event_frames(buf[start:stop], 1) == [event]
        pos = stop
    assert pos == len(buf)


class TestDirected:
    def test_empty_batch(self):
        buf = encode_batch([])
        assert scan_batch_shards(buf, 3) == [[], [], []]
        assert scan_batch(buf) == ([], len(buf))

    def test_single_event(self):
        event = Event("bid", {"price": 1.25}, 41, 7.0, "h1")
        shards = scan_batch_shards(encode_batch([event]), 4)
        assert [len(s) for s in shards] == [0, 1, 0, 0]
        assert decode_event_frames(bytes(shards[1][0]), 1) == [event]
        assert bytes(shards[1][0]) == encode_binary(event)

    def test_one_shard_gets_everything(self):
        events = [Event("bid", {"i": i}, i * 7 - 3, float(i), "h") for i in range(9)]
        (shard,) = scan_batch_shards(encode_batch(events), 1)
        assert decode_event_frames(b"".join(shard), len(shard)) == events

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError, match="at least one shard"):
            scan_batch_shards(encode_batch([]), 0)

    def test_trailing_garbage_rejected(self):
        buf = encode_batch([Event("bid", {}, 1, 0.0, "h")]) + b"!"
        with pytest.raises(ValueError, match="trailing garbage"):
            scan_batch_shards(buf, 2)

    def test_slices_are_views_not_copies(self):
        buf = encode_batch([Event("bid", {"a": 1}, 0, 0.0, "h")])
        (shard, _) = scan_batch_shards(buf, 2)
        view = shard[0]
        assert isinstance(view, memoryview)
        assert view.obj is buf


# -- full-batch scan ----------------------------------------------------------

_batches = st.builds(
    EventBatch,
    host=st.sampled_from(["h1", "web-042.sjc"]),
    query_id=st.sampled_from(["q1", "q-long-name"]),
    events=_events,
    seen_counts=st.dictionaries(
        st.tuples(st.sampled_from(["bid", "click"]), st.integers(0, 5)),
        st.integers(min_value=0, max_value=10_000),
        max_size=4,
    ),
    dropped=st.integers(min_value=0, max_value=100),
    sent_at=st.floats(min_value=0, max_value=1e9, allow_nan=False),
    partials=st.lists(
        st.builds(
            PartialAggregate,
            event_type=st.just("bid"),
            window=st.integers(0, 5),
            group_key=st.tuples(st.integers(0, 9)),
            values=st.tuples(st.integers(0, 99), st.floats(0, 10, allow_nan=False)),
        ),
        max_size=2,
    ),
    shed=st.integers(min_value=0, max_value=50),
    quarantined=st.sampled_from(["", "budget breached"]),
)


@settings(max_examples=100, deadline=None)
@given(batch=_batches)
def test_scan_full_batch_matches_decode_full_batch(batch):
    """The scanner's metadata + frame index reconstructs the decoder's
    batch exactly — `to_event_batch()` is the object-path fallback the
    pool takes for raw selections, so it must be lossless."""
    data = encode_full_batch(batch)
    enc = scan_full_batch(data)
    assert enc.wire_size() == len(data) == batch.wire_size()
    assert enc.to_event_batch() == decode_full_batch(data) == batch
    meta = enc.meta
    assert meta.events == []
    assert (meta.host, meta.query_id, meta.sent_at) == (
        batch.host, batch.query_id, batch.sent_at,
    )
    assert (meta.dropped, meta.shed, meta.quarantined) == (
        batch.dropped, batch.shed, batch.quarantined,
    )
    assert meta.seen_counts == batch.seen_counts
    assert meta.partials == batch.partials
    assert [(f[0], f[1], f[2]) for f in enc.frames] == [
        (e.request_id, e.timestamp, e.host) for e in batch.events
    ]


@settings(max_examples=50, deadline=None)
@given(batch=_batches)
def test_peek_full_batch_host(batch):
    assert peek_full_batch_host(encode_full_batch(batch)) == batch.host


def test_peek_rejects_bad_version():
    with pytest.raises(ValueError, match="unsupported batch encoding version"):
        peek_full_batch_host(b"\x7fxxxx")
    with pytest.raises(ValueError, match="unsupported batch encoding version"):
        peek_full_batch_host(b"")
