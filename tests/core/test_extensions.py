"""Tests for the two extensions: sliding windows and AGGREGATE ON HOSTS.

Sliding windows are the paper's explicitly-suggested extension
(Section 3.2); host-side pre-aggregation is the opt-in ablation mode
from DESIGN.md §7 that inverts the paper's central-execution default.
"""

import pytest

from repro.core import ManualClock, Scrub
from repro.core.events import EventRegistry
from repro.core.query import (
    ScrubSyntaxError,
    ScrubValidationError,
    parse_query,
    plan_query,
    unparse,
    validate_query,
)


@pytest.fixture
def registry():
    r = EventRegistry()
    r.define("bid", [("user_id", "long"), ("bid_price", "double")])
    r.define("click", [("user_id", "long")])
    return r


def validate(text, registry):
    return validate_query(parse_query(text), registry)


class TestSlidingWindowLanguage:
    def test_parse_and_round_trip(self):
        q = parse_query("select COUNT(*) from bid window 10s slide 5s;")
        assert q.window == 10.0 and q.slide == 5.0
        assert parse_query(unparse(q)) == q

    def test_slide_exceeding_window_rejected(self):
        with pytest.raises(ScrubSyntaxError, match="SLIDE"):
            parse_query("select COUNT(*) from bid window 5s slide 10s;")

    def test_plan_carries_slide(self, registry):
        plan = plan_query(
            validate("select COUNT(*) from bid window 10s slide 2s;", registry),
            "q1",
        )
        assert plan.central_object.slide_seconds == 2.0

    def test_tumbling_by_default(self, registry):
        plan = plan_query(
            validate("select COUNT(*) from bid window 10s;", registry), "q1"
        )
        assert plan.central_object.slide_seconds is None


class TestSlidingWindowExecution:
    def test_overlapping_counts(self):
        clock = ManualClock()
        scrub = Scrub(clock=clock, grace_seconds=0.0)
        scrub.define_event("bid", [("user_id", "long")])
        host = scrub.add_host("h0")
        handle = scrub.submit(
            "select COUNT(*) from bid window 10s slide 5s duration 30s;"
        )
        for t in range(20):
            clock.set(float(t))
            host.log("bid", user_id=1, request_id=t)
            scrub.tick()
        clock.set(31.0)
        results = scrub.finish(handle.query_id)
        by_start = {w.window_start: w.rows[0][0] for w in results.windows}
        # One event per second: full windows hold 10, the trailing
        # partially-filled window holds 5.
        assert by_start[0.0] == 10
        assert by_start[5.0] == 10
        assert by_start[10.0] == 10
        assert by_start[15.0] == 5
        # Overlap means total counted observations exceed events emitted.
        assert sum(by_start.values()) > 20

    def test_sampled_sliding_query_has_no_estimates(self):
        """Eqs. 1-3 estimation stays tumbling-only."""
        clock = ManualClock()
        scrub = Scrub(clock=clock, grace_seconds=0.0)
        scrub.define_event("bid", [("user_id", "long")])
        host = scrub.add_host("h0")
        handle = scrub.submit(
            "select COUNT(*) from bid sample events 50% "
            "window 10s slide 5s duration 20s;"
        )
        for t in range(10):
            clock.set(float(t))
            host.log("bid", user_id=1, request_id=t)
        clock.set(21.0)
        results = scrub.finish(handle.query_id)
        assert all(w.estimates == {} for w in results.windows)


class TestHostAggregationValidation:
    def test_requires_single_source(self, registry):
        with pytest.raises(ScrubValidationError, match="single event type"):
            validate(
                "select COUNT(*) from bid, click aggregate on hosts;", registry
            )

    def test_requires_aggregates(self, registry):
        with pytest.raises(ScrubValidationError, match="aggregate functions"):
            validate("select bid.user_id from bid aggregate on hosts;", registry)

    def test_sketches_rejected(self, registry):
        with pytest.raises(ScrubValidationError, match="COUNT_DISTINCT"):
            validate(
                "select COUNT_DISTINCT(bid.user_id) from bid aggregate on hosts;",
                registry,
            )
        with pytest.raises(ScrubValidationError, match="TOP"):
            validate(
                "select TOP(5, bid.user_id) from bid aggregate on hosts;",
                registry,
            )

    def test_event_sampling_rejected(self, registry):
        with pytest.raises(ScrubValidationError, match="sampling"):
            validate(
                "select COUNT(*) from bid sample events 50% aggregate on hosts;",
                registry,
            )

    def test_sliding_rejected(self, registry):
        with pytest.raises(ScrubValidationError, match="[Ss]liding"):
            validate(
                "select COUNT(*) from bid window 10s slide 5s aggregate on hosts;",
                registry,
            )

    def test_host_sampling_allowed(self, registry):
        validate(
            "select COUNT(*) from bid sample hosts 50% aggregate on hosts;",
            registry,
        )

    def test_plan_attaches_aggregation_spec(self, registry):
        plan = plan_query(
            validate(
                "select bid.user_id, COUNT(*), SUM(bid.bid_price) from bid "
                "window 10s aggregate on hosts group by bid.user_id;",
                registry,
            ),
            "q1",
        )
        spec = plan.host_objects[0].aggregation
        assert spec is not None
        assert len(spec.aggregates) == 2
        assert plan.central_object.host_aggregated


class TestHostAggregationExecution:
    def _run(self, mode_clause, hosts=3, events_per_tick=2, ticks=25):
        clock = ManualClock()
        scrub = Scrub(clock=clock, grace_seconds=0.0)
        scrub.define_event("bid", [("user_id", "long"), ("bid_price", "double")])
        agents = [scrub.add_host(f"h{i}") for i in range(hosts)]
        handle = scrub.submit(
            f"select bid.user_id, COUNT(*), SUM(bid.bid_price), "
            f"AVG(bid.bid_price), MIN(bid.bid_price), MAX(bid.bid_price) "
            f"from bid window 10s duration {ticks + 5}s {mode_clause} "
            f"group by bid.user_id;"
        )
        rid = 0
        for t in range(ticks):
            clock.set(float(t))
            for agent in agents:
                for _ in range(events_per_tick):
                    rid += 1
                    agent.log(
                        "bid", user_id=rid % 5,
                        bid_price=0.25 * (rid % 9) + 0.5, request_id=rid,
                    )
            scrub.tick()
        clock.set(float(ticks + 6))
        results = scrub.finish(handle.query_id)
        folded = {
            (w.window_start, r[0]): tuple(
                round(v, 9) if isinstance(v, float) else v for v in r.values[1:]
            )
            for w in results.windows
            for r in w.rows
        }
        return scrub, agents, folded

    def test_results_identical_to_central_execution(self):
        _s1, _a1, central = self._run("")
        _s2, _a2, preagg = self._run("aggregate on hosts")
        assert central == preagg

    def test_hosts_ship_fewer_bytes(self):
        s1, agents1, _ = self._run("", events_per_tick=6)
        s2, agents2, _ = self._run("aggregate on hosts", events_per_tick=6)
        central_bytes = sum(a.stats.bytes_shipped for a in agents1)
        preagg_bytes = sum(a.stats.bytes_shipped for a in agents2)
        assert preagg_bytes < central_bytes / 2

    def test_no_events_shipped_in_preagg_mode(self):
        _s, agents, _ = self._run("aggregate on hosts")
        assert all(a.stats.events_shipped == 0 for a in agents)
        assert all(a.stats.events_preaggregated > 0 for a in agents)

    def test_host_memory_grows_with_group_cardinality(self):
        """The minimal-impact violation central execution avoids: group
        state lives on the host, linear in the number of groups."""
        clock = ManualClock()
        scrub = Scrub(clock=clock, grace_seconds=0.0)
        scrub.define_event("bid", [("user_id", "long")])
        agent = scrub.add_host("h0")
        scrub.submit(
            "select bid.user_id, COUNT(*) from bid window 100s duration 100s "
            "aggregate on hosts group by bid.user_id;"
        )
        for rid in range(1, 501):
            agent.log("bid", user_id=rid, request_id=rid)  # all distinct
        assert agent.preagg_state_count == 500
        # Normal mode keeps nothing beyond the bounded buffer.

    def test_partials_flushed_per_completed_window(self):
        from repro.core.agent import RecordingTransport, ScrubAgent

        registry = EventRegistry()
        registry.define("bid", [("user_id", "long")])
        transport = RecordingTransport()
        clock = ManualClock()
        agent = ScrubAgent("h0", registry, transport, clock=clock)
        plan = plan_query(
            validate(
                "select bid.user_id, COUNT(*) from bid window 10s "
                "aggregate on hosts group by bid.user_id;",
                registry,
            ),
            "q1",
        )
        agent.install(plan.host_objects[0])
        clock.set(5.0)
        agent.log("bid", user_id=1, request_id=1)
        agent.flush()
        # Window 0 is still current: nothing shipped yet.
        assert all(not b.partials for b in transport.batches)
        clock.set(12.0)
        agent.flush()
        shipped = [p for b in transport.batches for p in b.partials]
        assert len(shipped) == 1
        assert shipped[0].window == 0
        assert shipped[0].group_key == (1,)
        assert agent.preagg_state_count == 0


class TestExtensionInteractions:
    def test_sliding_window_join(self):
        """Sliding windows compose with the request-id equi-join."""
        clock = ManualClock()
        scrub = Scrub(clock=clock, grace_seconds=0.0)
        scrub.define_event("bid", [("user_id", "long")])
        scrub.define_event("click", [("user_id", "long")])
        host = scrub.add_host("h0")
        handle = scrub.submit(
            "select COUNT(*) from bid, click window 10s slide 5s duration 30s;"
        )
        clock.set(7.0)
        host.log("bid", user_id=1, request_id=1)
        host.log("click", user_id=1, request_id=1)
        clock.set(31.0)
        results = scrub.finish(handle.query_id)
        counts = {w.window_start: w.rows[0][0] for w in results.windows}
        # The pair at t=7 joins in both covering windows: [0,10) and [5,15).
        assert counts.get(0.0) == 1
        assert counts.get(5.0) == 1

    def test_host_aggregation_with_host_sampling_scales(self):
        """Host sampling's N/n factor applies to pre-aggregated counts."""
        clock = ManualClock()
        scrub = Scrub(clock=clock, grace_seconds=0.0)
        scrub.define_event("bid", [("user_id", "long")])
        hosts = [scrub.add_host(f"h{i}", services=["S"]) for i in range(8)]
        handle = scrub.submit(
            "select COUNT(*) from bid @[Service in S] sample hosts 50% "
            "window 10s duration 20s aggregate on hosts;"
        )
        targeted = set(scrub.server._running[handle.query_id][0].targeted_hosts)
        assert len(targeted) == 4
        rid = 0
        for host in hosts:
            for _ in range(10):
                rid += 1
                host.log("bid", user_id=1, request_id=rid)
        clock.set(21.0)
        results = scrub.finish(handle.query_id)
        # 4 targeted hosts saw 10 each; scale 8/4 doubles to the fleet total.
        assert results.windows[0].rows[0][0] == 80

    def test_sliding_results_exportable(self):
        clock = ManualClock()
        scrub = Scrub(clock=clock, grace_seconds=0.0)
        scrub.define_event("bid", [("user_id", "long")])
        host = scrub.add_host("h0")
        handle = scrub.submit(
            "select COUNT(*) from bid window 10s slide 5s duration 15s;"
        )
        host.log("bid", user_id=1, request_id=1, timestamp=7.0)
        clock.set(16.0)
        results = scrub.finish(handle.query_id)
        assert "window_start" in results.to_csv()
        assert '"windows"' in results.to_json()
