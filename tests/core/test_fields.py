"""Tests for the field type system."""

import datetime

import pytest

from repro.core.events.fields import FieldDef, FieldType, coerce_value, default_for


class TestFieldTypeParsing:
    def test_primitive_names(self):
        assert FieldType.from_string("boolean") is FieldType.BOOLEAN
        assert FieldType.from_string("int") is FieldType.INT
        assert FieldType.from_string("long") is FieldType.LONG
        assert FieldType.from_string("float") is FieldType.FLOAT
        assert FieldType.from_string("double") is FieldType.DOUBLE
        assert FieldType.from_string("string") is FieldType.STRING
        assert FieldType.from_string("datetime") is FieldType.DATETIME
        assert FieldType.from_string("object") is FieldType.OBJECT

    def test_aliases(self):
        assert FieldType.from_string("bool") is FieldType.BOOLEAN
        assert FieldType.from_string("str") is FieldType.STRING
        assert FieldType.from_string("timestamp") is FieldType.DATETIME
        assert FieldType.from_string("date/time") is FieldType.DATETIME
        assert FieldType.from_string("dict") is FieldType.OBJECT

    def test_case_insensitive(self):
        assert FieldType.from_string("LONG") is FieldType.LONG
        assert FieldType.from_string("Double") is FieldType.DOUBLE

    def test_list_syntax(self):
        assert FieldType.from_string("list<long>") is FieldType.LIST_LONG
        assert FieldType.from_string("list<string>") is FieldType.LIST_STRING
        assert FieldType.from_string("[double]") is FieldType.LIST_DOUBLE
        assert FieldType.from_string("list<bool>") is FieldType.LIST_BOOLEAN

    def test_unknown_type_raises(self):
        with pytest.raises(ValueError, match="unknown Scrub field type"):
            FieldType.from_string("decimal")

    def test_is_list_and_element_type(self):
        assert FieldType.LIST_LONG.is_list
        assert FieldType.LIST_LONG.element_type is FieldType.LONG
        assert not FieldType.LONG.is_list
        assert FieldType.LONG.element_type is FieldType.LONG

    def test_is_numeric(self):
        assert FieldType.INT.is_numeric
        assert FieldType.DOUBLE.is_numeric
        assert not FieldType.STRING.is_numeric
        assert not FieldType.BOOLEAN.is_numeric


class TestCoercion:
    def test_none_allowed_everywhere(self):
        for ftype in FieldType:
            assert coerce_value(ftype, None) is None

    def test_long_accepts_int_rejects_bool(self):
        assert coerce_value(FieldType.LONG, 42) == 42
        with pytest.raises(TypeError):
            coerce_value(FieldType.LONG, True)

    def test_double_normalises_to_float(self):
        value = coerce_value(FieldType.DOUBLE, 3)
        assert value == 3.0 and isinstance(value, float)

    def test_double_rejects_string(self):
        with pytest.raises(TypeError):
            coerce_value(FieldType.DOUBLE, "3.0")

    def test_boolean_strict(self):
        assert coerce_value(FieldType.BOOLEAN, True) is True
        with pytest.raises(TypeError):
            coerce_value(FieldType.BOOLEAN, 1)

    def test_datetime_accepts_datetime_and_number(self):
        dt = datetime.datetime(2018, 4, 23, 12, 0)
        assert coerce_value(FieldType.DATETIME, dt) == dt.timestamp()
        assert coerce_value(FieldType.DATETIME, 1000.5) == 1000.5

    def test_string(self):
        assert coerce_value(FieldType.STRING, "Porto") == "Porto"
        with pytest.raises(TypeError):
            coerce_value(FieldType.STRING, 5)

    def test_list_coerces_elements(self):
        assert coerce_value(FieldType.LIST_DOUBLE, [1, 2.5]) == [1.0, 2.5]
        with pytest.raises(TypeError):
            coerce_value(FieldType.LIST_DOUBLE, [1, "x"])

    def test_list_rejects_scalar(self):
        with pytest.raises(TypeError, match="expected list"):
            coerce_value(FieldType.LIST_LONG, 5)

    def test_object_accepts_dict(self):
        assert coerce_value(FieldType.OBJECT, {"a": 1}) == {"a": 1}
        with pytest.raises(TypeError):
            coerce_value(FieldType.OBJECT, [1, 2])

    def test_tuple_accepted_as_list(self):
        assert coerce_value(FieldType.LIST_LONG, (1, 2)) == [1, 2]


class TestDefaults:
    def test_scalar_defaults(self):
        assert default_for(FieldType.LONG) == 0
        assert default_for(FieldType.STRING) == ""
        assert default_for(FieldType.BOOLEAN) is False
        assert default_for(FieldType.OBJECT) == {}

    def test_list_default(self):
        assert default_for(FieldType.LIST_STRING) == []


class TestFieldDef:
    def test_valid_names(self):
        FieldDef("bid_price", FieldType.DOUBLE)
        FieldDef("x1", FieldType.LONG)

    def test_invalid_names(self):
        with pytest.raises(ValueError):
            FieldDef("", FieldType.LONG)
        with pytest.raises(ValueError):
            FieldDef("1abc", FieldType.LONG)
        with pytest.raises(ValueError):
            FieldDef("has space", FieldType.LONG)

    def test_coerce_reports_field_name(self):
        fdef = FieldDef("bid_price", FieldType.DOUBLE)
        with pytest.raises(TypeError, match="bid_price"):
            fdef.coerce("oops")
