"""Cross-layer conservation invariants, property-tested.

These pin the accounting identities the overhead and completeness
claims rest on: every matched event is either shipped, sampled out, or
dropped — never silently lost; the drop counts the user sees equal the
drops the host took; join output sizes follow the per-request product
rule exactly.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ManualClock, Scrub
from repro.core.agent import RecordingTransport, ScrubAgent
from repro.core.central.join import JoinBuffer
from repro.core.events import Event, EventRegistry
from repro.core.query import parse_query, plan_query, validate_query


def make_agent(registry, capacity=10_000, batch=10**9):
    transport = RecordingTransport()
    agent = ScrubAgent(
        "h1", registry, transport,
        buffer_capacity=capacity, flush_batch_size=batch,
    )
    return agent, transport


def install(agent, registry, text, query_id="q1"):
    plan = plan_query(validate_query(parse_query(text), registry), query_id)
    for obj in plan.host_objects:
        agent.install(obj)


@st.composite
def _event_stream(draw):
    n = draw(st.integers(min_value=0, max_value=150))
    return [
        {
            "exchange_id": draw(st.integers(min_value=0, max_value=3)),
            "ts": draw(st.floats(min_value=0, max_value=50, allow_nan=False)),
        }
        for _ in range(n)
    ]


class TestAgentConservation:
    @settings(max_examples=40, deadline=None)
    @given(
        events=_event_stream(),
        rate=st.sampled_from([1.0, 0.5, 0.1]),
        capacity=st.sampled_from([5, 50, 10_000]),
    )
    def test_matched_equals_shipped_plus_sampled_out_plus_dropped(
        self, events, rate, capacity
    ):
        registry = EventRegistry()
        registry.define("bid", [("exchange_id", "long")])
        agent, transport = make_agent(registry, capacity=capacity)
        sampling = f"sample events {rate * 100:g}%" if rate < 1.0 else ""
        install(agent, registry,
                f"select COUNT(*) from bid {sampling} window 10s;")
        for rid, e in enumerate(events):
            agent.log("bid", exchange_id=e["exchange_id"],
                      request_id=rid, timestamp=e["ts"])
        agent.flush()

        stats = agent.stats
        assert stats.events_matched == len(events)
        sampled_out = stats.events_matched - stats.events_shipped - stats.events_dropped
        assert sampled_out >= 0
        if rate == 1.0:
            assert sampled_out == 0
        # Everything shipped actually reached the transport.
        assert len(transport.events) == stats.events_shipped
        # Seen counts conserve matches exactly, independent of sampling/drops.
        total_seen = sum(
            count for b in transport.batches for count in b.seen_counts.values()
        )
        assert total_seen == len(events)
        # Reported drops equal buffer rejections.
        assert sum(b.dropped for b in transport.batches) == stats.events_dropped

    @settings(max_examples=30, deadline=None)
    @given(events=_event_stream())
    def test_end_to_end_count_conservation_without_sampling(self, events):
        clock = ManualClock()
        scrub = Scrub(clock=clock, grace_seconds=0.0)
        scrub.define_event("bid", [("exchange_id", "long")])
        host = scrub.add_host("h0")
        handle = scrub.submit("select COUNT(*) from bid window 10s duration 60s;")
        for rid, e in enumerate(events):
            host.log("bid", exchange_id=e["exchange_id"],
                     request_id=rid, timestamp=e["ts"])
        clock.set(61.0)
        results = scrub.finish(handle.query_id)
        counted = sum(r[0] for r in results.rows)
        assert counted + results.total_late_events + results.total_host_dropped == len(events)
        assert results.total_late_events == 0  # nothing closed early here


class TestJoinProductRule:
    @settings(max_examples=60, deadline=None)
    @given(
        left=st.lists(st.integers(min_value=0, max_value=9), max_size=40),
        right=st.lists(st.integers(min_value=0, max_value=9), max_size=40),
    )
    def test_output_size_is_sum_of_products(self, left, right):
        jb = JoinBuffer(("a", "b"))
        for i, rid in enumerate(left):
            jb.add(Event("a", {"i": i}, rid, 0.0))
        for i, rid in enumerate(right):
            jb.add(Event("b", {"i": i}, rid, 0.0))
        rows = list(jb.join())
        expected = sum(
            left.count(rid) * right.count(rid) for rid in set(left) & set(right)
        )
        assert len(rows) == expected
        # And the unmatched count accounts for every remaining event.
        assert jb.unmatched_count() == sum(
            1 for rid in left if rid not in right
        ) + sum(1 for rid in right if rid not in left)


class TestGroupSumConservation:
    @settings(max_examples=40, deadline=None)
    @given(events=_event_stream())
    def test_group_counts_sum_to_total(self, events):
        """Sum over GROUP BY cells == ungrouped COUNT(*) per window."""
        clock = ManualClock()
        scrub = Scrub(clock=clock, grace_seconds=0.0)
        scrub.define_event("bid", [("exchange_id", "long")])
        host = scrub.add_host("h0")
        grouped = scrub.submit(
            "select bid.exchange_id, COUNT(*) from bid window 10s duration 60s "
            "group by bid.exchange_id;"
        )
        total = scrub.submit("select COUNT(*) from bid window 10s duration 60s;")
        for rid, e in enumerate(events):
            host.log("bid", exchange_id=e["exchange_id"],
                     request_id=rid, timestamp=e["ts"])
        clock.set(61.0)
        grouped_results = scrub.finish(grouped.query_id)
        total_results = scrub.finish(total.query_id)

        grouped_by_window = {
            w.window_start: sum(r[1] for r in w.rows)
            for w in grouped_results.windows
        }
        total_by_window = {
            w.window_start: w.rows[0][0] for w in total_results.windows
        }
        assert grouped_by_window == total_by_window
