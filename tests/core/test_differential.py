"""Differential testing: the full Scrub pipeline vs a plain-Python oracle.

Hypothesis generates random event streams and random (restricted-family)
queries; each query runs twice — through the real pipeline (parser →
validator → planner → agent selection/projection → central
window/group/aggregate) and through a direct Python evaluation of the
same semantics — and the answers must agree exactly.  This catches
cross-layer disagreements no unit test targets: pushdown vs central
evaluation, NULL handling across the wire, window binning, projection
dropping a needed field, group-key normalisation.
"""

import math
from collections import defaultdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ManualClock, Scrub

WINDOW = 10.0
SPAN = 100.0

FIELDS = {
    "exchange_id": st.one_of(st.none(), st.integers(min_value=0, max_value=4)),
    "bid_price": st.one_of(
        st.none(),
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False).map(
            lambda f: round(f, 3)
        ),
    ),
    "city": st.one_of(st.none(), st.sampled_from(["Porto", "NY", "SF"])),
}

_events = st.lists(
    st.fixed_dictionaries(
        {
            "ts": st.floats(min_value=0.0, max_value=SPAN - 10.0, allow_nan=False),
            **FIELDS,
        }
    ),
    min_size=0,
    max_size=60,
)

_predicates = st.sampled_from(
    [
        "",
        "where bid.exchange_id = 2",
        "where bid.exchange_id != 2",
        "where bid.bid_price > 5.0",
        "where bid.bid_price <= 2.5 and bid.exchange_id in (0, 1)",
        "where bid.city = 'Porto' or bid.exchange_id = 4",
        "where bid.city like 'P%'",
        "where bid.bid_price between 1.0 and 6.0",
        "where bid.exchange_id is not null",
        "where not bid.city = 'NY'",
    ]
)

_aggregates = st.sampled_from(
    [
        ("COUNT(*)", "count_star"),
        ("COUNT(bid.bid_price)", "count_price"),
        ("SUM(bid.bid_price)", "sum"),
        ("AVG(bid.bid_price)", "avg"),
        ("MIN(bid.bid_price)", "min"),
        ("MAX(bid.bid_price)", "max"),
    ]
)

_grouped = st.booleans()


def _oracle_predicate(text):
    """Python evaluation of the predicate families used above."""
    def pred(e):
        x, p, c = e["exchange_id"], e["bid_price"], e["city"]
        if text == "":
            return True
        if text == "where bid.exchange_id = 2":
            return x is not None and x == 2
        if text == "where bid.exchange_id != 2":
            return x is not None and x != 2
        if text == "where bid.bid_price > 5.0":
            return p is not None and p > 5.0
        if text == "where bid.bid_price <= 2.5 and bid.exchange_id in (0, 1)":
            return p is not None and p <= 2.5 and x is not None and x in (0, 1)
        if text == "where bid.city = 'Porto' or bid.exchange_id = 4":
            return (c == "Porto") or (x is not None and x == 4)
        if text == "where bid.city like 'P%'":
            return c is not None and c.startswith("P")
        if text == "where bid.bid_price between 1.0 and 6.0":
            return p is not None and 1.0 <= p <= 6.0
        if text == "where bid.exchange_id is not null":
            return x is not None
        if text == "where not bid.city = 'NY'":
            return c is not None and c != "NY"
        raise AssertionError(text)

    return pred


def _oracle_aggregate(kind, values, rows):
    if kind == "count_star":
        return len(rows)
    if kind == "count_price":
        return len(values)
    if not values:
        return None
    if kind == "sum":
        return sum(values)
    if kind == "avg":
        return sum(values) / len(values)
    if kind == "min":
        return min(values)
    if kind == "max":
        return max(values)
    raise AssertionError(kind)


def _run_scrub(events, select, predicate, group_clause):
    clock = ManualClock()
    scrub = Scrub(clock=clock, grace_seconds=0.0)
    scrub.define_event(
        "bid", [("exchange_id", "long"), ("bid_price", "double"), ("city", "string")]
    )
    host = scrub.add_host("h0")
    handle = scrub.submit(
        f"select {select} from bid {predicate} "
        f"window {WINDOW:g}s duration {SPAN:g}s {group_clause};"
    )
    for rid, event in enumerate(events):
        payload = {
            k: v
            for k, v in event.items()
            if k != "ts" and v is not None
        }
        host.log("bid", payload, request_id=rid, timestamp=event["ts"])
    clock.set(SPAN + 1.0)
    return scrub.finish(handle.query_id)


def _close(a, b):
    if a is None or b is None:
        return a is None and b is None
    if isinstance(a, float) or isinstance(b, float):
        return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)
    return a == b


@settings(max_examples=60, deadline=None)
@given(events=_events, agg=_aggregates, predicate=_predicates, grouped=_grouped)
def test_pipeline_matches_oracle(events, agg, predicate, grouped):
    agg_text, agg_kind = agg
    group_clause = "group by bid.exchange_id" if grouped else ""
    select = f"bid.exchange_id, {agg_text}" if grouped else agg_text

    results = _run_scrub(events, select, predicate, group_clause)

    # Oracle: same windows, same groups, same aggregates, in Python.
    pred = _oracle_predicate(predicate)
    matching = [e for e in events if pred(e)]
    per_window = defaultdict(list)
    for e in matching:
        per_window[int(e["ts"] // WINDOW)].append(e)

    expected = {}
    for window, rows in per_window.items():
        if grouped:
            groups = defaultdict(list)
            for e in rows:
                groups[e["exchange_id"]].append(e)
            for key, grows in groups.items():
                values = [e["bid_price"] for e in grows if e["bid_price"] is not None]
                expected[(window * WINDOW, key)] = _oracle_aggregate(
                    agg_kind, values, grows
                )
        else:
            values = [e["bid_price"] for e in rows if e["bid_price"] is not None]
            expected[(window * WINDOW, None)] = _oracle_aggregate(
                agg_kind, values, rows
            )

    actual = {}
    for window in results.windows:
        for row in window.rows:
            if grouped:
                actual[(window.window_start, row[0])] = row[1]
            else:
                actual[(window.window_start, None)] = row[0]

    # Scrub emits no row for windows with zero matching events; the oracle
    # therefore only expects windows that had matches.
    assert set(actual) == set(expected), (actual, expected)
    for key in expected:
        assert _close(actual[key], expected[key]), (
            key, actual[key], expected[key], predicate, agg_text,
        )


@settings(max_examples=30, deadline=None)
@given(events=_events, predicate=_predicates)
def test_preaggregation_matches_central(events, predicate):
    """AGGREGATE ON HOSTS must be a pure execution-strategy change."""
    select = "bid.exchange_id, COUNT(*), SUM(bid.bid_price)"
    group = "group by bid.exchange_id"

    central = _run_scrub(events, select, predicate, group)
    preagg = _run_scrub(events, select, predicate, group + " aggregate on hosts")

    def fold(results):
        return {
            (w.window_start, r[0]): (r[1], None if r[2] is None else round(r[2], 9))
            for w in results.windows
            for r in w.rows
        }

    assert fold(central) == fold(preagg)
