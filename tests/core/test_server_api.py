"""Tests for the query server and the Scrub façade (paper Fig. 3 flow)."""

import pytest

from repro.core import ManualClock, Scrub
from repro.core.query import (
    QueryNotFoundError,
    ScrubSyntaxError,
    ScrubValidationError,
)


@pytest.fixture
def scrub():
    s = Scrub(clock=ManualClock(), grace_seconds=0.0)
    s.define_event("bid", [
        ("exchange_id", "long"), ("city", "string"), ("bid_price", "double"),
        ("user_id", "long"),
    ])
    return s


@pytest.fixture
def clock(scrub):
    return scrub.clock


class TestSubmission:
    def test_submit_returns_handle(self, scrub):
        scrub.add_host("h1", services=["BidServers"])
        handle = scrub.submit("select COUNT(*) from bid duration 60s;")
        assert handle.query_id == "q00001"
        assert handle.targeted_hosts == ("h1",)
        assert handle.expires_at == 60.0

    def test_query_ids_unique(self, scrub):
        scrub.add_host("h1")
        h1 = scrub.submit("select COUNT(*) from bid;")
        h2 = scrub.submit("select COUNT(*) from bid;")
        assert h1.query_id != h2.query_id

    def test_syntax_error_propagates(self, scrub):
        scrub.add_host("h1")
        with pytest.raises(ScrubSyntaxError):
            scrub.submit("select from;")

    def test_validation_error_propagates(self, scrub):
        scrub.add_host("h1")
        with pytest.raises(ScrubValidationError):
            scrub.submit("select COUNT(*) from nonexistent;")

    def test_empty_target_rejected(self, scrub):
        scrub.add_host("h1", services=["BidServers"])
        with pytest.raises(ScrubValidationError, match="no host"):
            scrub.submit("select COUNT(*) from bid @[Service in AdServers];")

    def test_target_installs_only_on_matching_hosts(self, scrub):
        bid_host = scrub.add_host("h1", services=["BidServers"])
        other = scrub.add_host("h2", services=["AdServers"])
        scrub.submit("select COUNT(*) from bid @[Service in BidServers];")
        assert bid_host.active_query_ids == ("q00001",)
        assert other.active_query_ids == ()

    def test_host_sampling_subset(self, scrub):
        for i in range(20):
            scrub.add_host(f"h{i}", services=["BidServers"])
        handle = scrub.submit(
            "select COUNT(*) from bid @[Service in BidServers] sample hosts 25%;"
        )
        assert len(handle.targeted_hosts) == 5
        assert len(handle.planned_hosts) == 20
        assert set(handle.targeted_hosts) <= set(handle.planned_hosts)


class TestLifecycle:
    def test_end_to_end_count(self, scrub, clock):
        host = scrub.add_host("h1")
        handle = scrub.submit("select COUNT(*) from bid window 10s duration 30s;")
        for i in range(6):
            clock.set(float(i))
            host.log("bid", exchange_id=1, request_id=i)
        clock.set(31.0)
        results = scrub.finish(handle.query_id)
        assert results.windows[0].rows[0][0] == 6

    def test_poll_sees_closed_windows_only(self, scrub, clock):
        host = scrub.add_host("h1")
        handle = scrub.submit("select COUNT(*) from bid window 10s duration 100s;")
        host.log("bid", exchange_id=1, request_id=1)
        scrub.tick()
        assert len(scrub.poll(handle.query_id)) == 0  # window still open
        clock.set(15.0)
        scrub.tick()
        assert len(scrub.poll(handle.query_id)) == 1
        scrub.cancel(handle.query_id)

    def test_finish_idempotent(self, scrub, clock):
        host = scrub.add_host("h1")
        handle = scrub.submit("select COUNT(*) from bid duration 10s;")
        host.log("bid", exchange_id=1, request_id=1)
        first = scrub.finish(handle.query_id)
        again = scrub.finish(handle.query_id)
        assert first is again

    def test_poll_after_finish_returns_results(self, scrub, clock):
        host = scrub.add_host("h1")
        handle = scrub.submit("select COUNT(*) from bid duration 10s;")
        host.log("bid", exchange_id=1, request_id=1)
        scrub.finish(handle.query_id)
        assert len(scrub.poll(handle.query_id).rows) == 1

    def test_tick_reaps_expired_spans(self, scrub, clock):
        """The query span guards against forgotten queries (paper 3.2)."""
        host = scrub.add_host("h1")
        handle = scrub.submit("select COUNT(*) from bid duration 20s;")
        assert host.active_query_ids == (handle.query_id,)
        clock.set(25.0)
        scrub.tick()
        assert host.active_query_ids == ()
        assert scrub.server.running_query_ids == ()
        # Results are retained for collection.
        scrub.poll(handle.query_id)

    def test_cancel_discards_unclosed_windows(self, scrub, clock):
        host = scrub.add_host("h1")
        handle = scrub.submit("select COUNT(*) from bid window 10s duration 100s;")
        host.log("bid", exchange_id=1, request_id=1)
        scrub.cancel(handle.query_id)
        assert len(scrub.poll(handle.query_id)) == 0
        assert host.active_query_ids == ()

    def test_unknown_query_id(self, scrub):
        with pytest.raises(QueryNotFoundError):
            scrub.finish("q99999")
        with pytest.raises(QueryNotFoundError):
            scrub.poll("q99999")

    def test_concurrent_queries_independent(self, scrub, clock):
        host = scrub.add_host("h1")
        h1 = scrub.submit("select COUNT(*) from bid window 10s duration 100s;")
        h2 = scrub.submit(
            "select COUNT(*) from bid where bid.exchange_id = 5 "
            "window 10s duration 100s;"
        )
        host.log("bid", exchange_id=5, request_id=1)
        host.log("bid", exchange_id=6, request_id=2)
        clock.set(101.0)
        r1 = scrub.finish(h1.query_id)
        r2 = scrub.finish(h2.query_id)
        assert r1.rows[0][0] == 2
        assert r2.rows[0][0] == 1

    def test_delayed_start(self, scrub, clock):
        host = scrub.add_host("h1")
        handle = scrub.submit(
            "select COUNT(*) from bid start 100 duration 50s;"
        )
        host.log("bid", exchange_id=1, request_id=1)  # before the span
        clock.set(120.0)
        host.log("bid", exchange_id=1, request_id=2)  # inside
        clock.set(200.0)
        results = scrub.finish(handle.query_id)
        assert sum(r[0] for r in results.rows) == 1


class TestRunClosedWorld:
    def test_helper(self, scrub, clock):
        host = scrub.add_host("h1")

        def drive(s):
            for i in range(4):
                host.log("bid", exchange_id=1, request_id=i)

        results = scrub.run_closed_world(
            "select COUNT(*) from bid duration 60s;", drive
        )
        assert results.rows[0][0] == 4
