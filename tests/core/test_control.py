"""Unit tests for the closed-loop sampling controller.

The controller is engine-free, so these tests drive it with synthetic
telemetry: hand-built ``WindowResult``/``ApproxEstimate`` windows whose
dispersions are chosen to make the Eqs. 1-3 inversion land on known
answers, and hand-built ``query_costs`` counter streams for the budget
clamp and freeze paths.
"""

import math

import pytest

from repro.core.agent.governor import ImpactBudget
from repro.core.approx.sampling_theory import ApproxEstimate
from repro.core.central.results import WindowResult
from repro.core.control import (
    STATE_FROZEN,
    STATE_RATE_LIMITED,
    STATE_TRACKING,
    STATE_WARMUP,
    SamplingController,
)
from repro.core.query.ast import TargetCISpec


QUERY_ID = "q00001"
TOTAL = 64
TARGETED = 16


def make_window(
    start: float,
    estimate: float = 1000.0,
    machine_dispersion: float = 0.01,
    value_dispersion: float = 1000.0,
    sample_events: int = 500,
) -> WindowResult:
    est = ApproxEstimate(
        estimate=estimate,
        error_bound=1.0,
        confidence=0.95,
        variance=1.0,
        sampled_machines=TARGETED,
        total_machines=TOTAL,
        machine_dispersion=machine_dispersion,
        value_dispersion=value_dispersion,
        sample_events=sample_events,
    )
    return WindowResult(
        query_id=QUERY_ID,
        window_start=start,
        window_end=start + 1.0,
        columns=("total",),
        rows=[],
        estimates={"total": est},
    )


def make_controller(**kwargs) -> SamplingController:
    defaults = dict(
        total_hosts=TOTAL,
        targeted_hosts=TARGETED,
        window_seconds=1.0,
        event_rate=1.0,
    )
    defaults.update(kwargs)
    target = defaults.pop("target", TargetCISpec(relative_error=0.05))
    return SamplingController(QUERY_ID, target, **defaults)


class TestWarmupAndTracking:
    def test_warmup_until_first_window(self):
        c = make_controller()
        assert c.tick(0.0) is None
        assert c.state == STATE_WARMUP

    def test_relax_converges_after_hysteresis(self):
        # At full rate the predicted error is far below the 5% target,
        # and the solver's cheapest feasible rate is one ladder step
        # down (sqrt(1/2)); the verdict must repeat for two windows.
        c = make_controller()
        c.observe_window(make_window(0.0), 1.0)
        assert c.tick(1.0) is None  # streak 1 of 2
        assert c.state == STATE_TRACKING
        c.observe_window(make_window(1.0), 2.0)
        update = c.tick(2.0)
        assert update is not None
        assert update.reason == "relax"
        assert update.version == 1
        assert update.event_rate == pytest.approx(0.5 ** 0.5)
        assert update.host_count == TARGETED  # can_widen defaults off
        assert c.version == 1

    def test_hysteresis_is_window_gated_not_tick_gated(self):
        # Many ticks against one window must count as one evaluation.
        c = make_controller()
        c.observe_window(make_window(0.0), 1.0)
        for tick in range(5):
            assert c.tick(1.0 + 0.01 * tick) is None

    def test_deadband_no_oscillation_after_convergence(self):
        c = make_controller()
        c.observe_window(make_window(0.0), 1.0)
        assert c.tick(1.0) is None
        c.observe_window(make_window(1.0), 2.0)
        assert c.tick(2.0) is not None
        # Telemetry keeps arriving unchanged: the converged pair sits in
        # the deadband and nothing moves again.
        for i in range(2, 12):
            c.observe_window(make_window(float(i)), float(i + 1))
            assert c.tick(float(i + 1)) is None
        assert c.version == 1
        assert c.state == STATE_TRACKING

    def test_tighten_when_submitted_rates_miss_target(self):
        c = make_controller(event_rate=1.0 / 64.0)
        c.observe_window(make_window(0.0), 1.0)
        assert c.tick(1.0) is None
        c.observe_window(make_window(1.0), 2.0)
        update = c.tick(2.0)
        assert update is not None
        assert update.reason == "tighten"
        assert update.event_rate > 1.0 / 64.0

    def test_widen_hosts_when_allowed(self):
        # Machine-stage variance dominates: no event rate at n=16 can
        # meet the target, so the solver must grow the host set.
        c = make_controller(can_widen=True)
        window = make_window(0.0, machine_dispersion=5.0, value_dispersion=10.0)
        c.observe_window(window, 1.0)
        assert c.tick(1.0) is None
        c.observe_window(make_window(1.0, machine_dispersion=5.0, value_dispersion=10.0), 2.0)
        update = c.tick(2.0)
        assert update is not None
        assert update.host_count > TARGETED
        assert update.host_rate == pytest.approx(update.host_count / TOTAL)

    def test_zero_estimates_keep_warming_up(self):
        c = make_controller()
        c.observe_window(make_window(0.0, estimate=0.0), 1.0)
        assert c.tick(1.0) is None
        assert c.state == STATE_WARMUP


class TestBudgetClamp:
    def feed_costs(self, c, wall_ns_per_event, routed_step, at):
        c.observe_costs(
            {
                "host-0": {
                    "ewma_ns": wall_ns_per_event,
                    "routed": routed_step,
                    "rates_version": c.version,
                }
            },
            at,
        )
        c.observe_costs(
            {
                "host-0": {
                    "ewma_ns": wall_ns_per_event,
                    "routed": routed_step * 2,
                    "rates_version": c.version,
                }
            },
            at + 1.0,
        )

    def test_clamp_is_immediate_no_hysteresis(self):
        budget = ImpactBudget(max_wall_seconds=0.050)
        c = make_controller(budget=budget)
        c.observe_window(make_window(0.0), 1.0)
        # 1ms per event x 1000 events/s = 1s of wall per 1s interval:
        # 20x over the 80%-of-50ms clamp line.
        self.feed_costs(c, 1_000_000.0, 1000, 1.0)
        update = c.tick(2.0)  # first evaluated window — no hysteresis
        assert update is not None
        assert update.reason == "clamp"
        assert update.event_rate < 0.1
        status = c.status()
        assert status["rate_limited"] is not None
        assert status["rate_limited"]["reason"] == "impact-budget"
        assert (
            status["rate_limited"]["achievable_relative_error"]
            > c.target.relative_error
        )

    def test_no_clamp_with_headroom(self):
        budget = ImpactBudget(max_wall_seconds=0.050)
        c = make_controller(budget=budget)
        c.observe_window(make_window(0.0), 1.0)
        # 1us per event x 100 events/s = 0.1ms of wall: far under line.
        self.feed_costs(c, 1_000.0, 100, 1.0)
        update = c.tick(2.0)
        assert update is None or update.reason != "clamp"

    def test_budget_tightened_mid_run_clamps(self):
        c = make_controller(budget=None)
        c.observe_window(make_window(0.0), 1.0)
        self.feed_costs(c, 1_000_000.0, 1000, 1.0)
        assert c.tick(2.0) is None  # no budget, no clamp
        c.budget = ImpactBudget(max_wall_seconds=0.050)
        c.observe_window(make_window(1.0), 2.5)
        self.feed_costs(c, 1_000_000.0, 3000, 2.5)
        update = c.tick(4.0)
        assert update is not None and update.reason == "clamp"
        assert c.state == STATE_RATE_LIMITED


class TestRateLimitedReporting:
    def test_unreachable_target_reports_achievable_bound(self):
        # Machine variance alone exceeds the target and the host set is
        # fixed: no applicable pair works, so the controller degrades
        # honestly instead of thrashing rates.
        c = make_controller(target=TargetCISpec(relative_error=0.05))
        window = make_window(0.0, machine_dispersion=5.0, value_dispersion=0.0)
        c.observe_window(window, 1.0)
        assert c.tick(1.0) is None
        status = c.status()
        assert c.state == STATE_RATE_LIMITED
        limited = status["rate_limited"]
        assert limited["reason"] == "target-unreachable"
        assert limited["achievable_relative_error"] > 0.05
        assert limited["target_relative_error"] == pytest.approx(0.05)


class TestFreeze:
    def test_freeze_on_stale_telemetry(self):
        c = make_controller()
        c.observe_window(make_window(0.0), 1.0)
        assert c.tick(10.0) is None  # 9s > 3 window lengths silent
        assert c.state == STATE_FROZEN
        assert c.status()["frozen_reason"] == "telemetry-stale"
        # Telemetry recovers: the freeze lifts.
        c.observe_window(make_window(9.0), 10.5)
        c.tick(10.6)
        assert c.state != STATE_FROZEN

    def test_freeze_on_version_less_host(self):
        c = make_controller()
        c.observe_window(make_window(0.0), 1.0)
        c.observe_costs({"old-agent": {"ewma_ns": 100.0, "routed": 10}}, 1.0)
        assert c.tick(1.5) is None
        assert c.state == STATE_FROZEN
        assert c.status()["frozen_reason"] == "host-missing-rate-version"

    def test_freeze_on_retune_never_converging(self):
        c = make_controller()
        c.observe_window(make_window(0.0), 1.0)
        assert c.tick(1.0) is None
        c.observe_window(make_window(1.0), 2.0)
        update = c.tick(2.0)
        assert update is not None
        # A host keeps heartbeating the old version past the grace
        # (windows stay fresh, so this isn't the staleness freeze).
        for at in (3.0, 4.0, 5.0, 6.0):
            c.observe_window(make_window(at - 1.0), at)
            c.observe_costs(
                {"h1": {"ewma_ns": 10.0, "routed": 5, "rates_version": 0}}, at
            )
        assert c.tick(6.5) is None
        assert c.state == STATE_FROZEN
        assert c.status()["frozen_reason"] == "retune-not-converging"

    def test_converging_host_blocks_retune_within_grace(self):
        c = make_controller()
        c.observe_window(make_window(0.0), 1.0)
        assert c.tick(1.0) is None
        c.observe_window(make_window(1.0), 2.0)
        assert c.tick(2.0) is not None
        # Within the grace window a lagging host is normal convergence:
        # not frozen, but no further retunes either.
        c.observe_window(make_window(2.0), 3.0)
        c.observe_costs(
            {"h1": {"ewma_ns": 10.0, "routed": 5, "rates_version": 0}}, 3.0
        )
        assert c.tick(3.0) is None
        assert c.state != STATE_FROZEN
        assert c.version == 1

    def test_forget_host_unfreezes(self):
        c = make_controller()
        c.observe_window(make_window(0.0), 1.0)
        c.observe_costs({"old-agent": {"ewma_ns": 100.0, "routed": 10}}, 1.0)
        c.tick(1.5)
        assert c.state == STATE_FROZEN
        c.forget_host("old-agent")
        c.observe_window(make_window(1.0), 2.0)
        c.tick(2.0)
        assert c.state != STATE_FROZEN


class TestStarvedTelemetry:
    def converge(self):
        c = make_controller()
        c.observe_window(make_window(0.0), 1.0)
        assert c.tick(1.0) is None
        c.observe_window(make_window(1.0), 2.0)
        assert c.tick(2.0) is not None
        return c

    def test_starved_windows_cannot_shrink_the_variance_model(self):
        # A nearly-empty window routinely misses the value tail and
        # measures collapsed dispersions; believing it would let a
        # clamped query claim its target became achievable for free.
        c = self.converge()
        achieved = c.status()["achieved_relative_error"]
        for i in range(2, 10):
            c.observe_window(
                make_window(
                    float(i),
                    machine_dispersion=0.0,
                    value_dispersion=0.0,
                    sample_events=4,
                ),
                float(i + 1),
            )
            assert c.tick(float(i + 1)) is None  # no relax on noise
        assert c.version == 1
        status = c.status()
        assert status["achieved_relative_error"] == achieved
        # The variance model held: predicted error is still finite and
        # did not collapse toward zero.
        assert status["predicted_relative_error"] > 0.0

    def test_starved_windows_still_raise_the_model(self):
        # Bad news from a starved window is believed: dispersion jumps
        # upward must tighten even when the sample was tiny.
        c = self.converge()
        for at in (3.0, 4.0):
            c.observe_window(
                make_window(at - 1.0, value_dispersion=1e6, sample_events=4),
                at,
            )
            update = c.tick(at)
        assert update is not None
        assert update.reason == "tighten"
        assert update.event_rate > 0.5 ** 0.5


class TestStatus:
    def test_status_shape(self):
        c = make_controller()
        status = c.status()
        assert status["state"] == STATE_WARMUP
        assert status["version"] == 0
        assert status["host_rate"] == pytest.approx(TARGETED / TOTAL)
        assert status["event_rate"] == 1.0
        assert status["target_relative_error"] == pytest.approx(0.05)
        assert status["confidence"] == pytest.approx(0.95)
        assert status["rate_limited"] is None
        assert status["frozen_reason"] is None

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            make_controller(targeted_hosts=0)
        with pytest.raises(ValueError):
            make_controller(targeted_hosts=TOTAL + 1)

    def test_predicted_error_well_defined_at_full_rates(self):
        # The whole point of the dispersion telemetry: a window observed
        # at r=1 still predicts the error of any cheaper pair.
        c = make_controller()
        c.observe_window(make_window(0.0), 1.0)
        c.tick(1.0)
        predicted = c.status()["predicted_relative_error"]
        assert predicted is not None and math.isfinite(predicted)
