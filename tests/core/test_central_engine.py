"""Tests for the ScrubCentral engine: windows, grouping, joins, estimates,
late events, drops, lifecycle."""

import math

import pytest

from repro.core.agent.transport import EventBatch
from repro.core.central.engine import CentralEngine
from repro.core.events import Event, EventRegistry
from repro.core.query import (
    QueryNotFoundError,
    ScrubExecutionError,
    parse_query,
    plan_query,
    validate_query,
)


@pytest.fixture
def registry():
    r = EventRegistry()
    r.define("bid", [
        ("exchange_id", "long"), ("city", "string"), ("bid_price", "double"),
        ("user_id", "long"),
    ])
    r.define("exclusion", [("reason", "string"), ("exchange_id", "long")])
    return r


def central_obj(text, registry, query_id="q1"):
    return plan_query(validate_query(parse_query(text), registry), query_id).central_object


def ev(event_type, rid, ts, host="h1", **payload):
    return Event(event_type, payload, rid, ts, host)


def batch(events, host="h1", query_id="q1", seen=None, dropped=0):
    return EventBatch(
        host=host, query_id=query_id, events=events,
        seen_counts=seen or {}, dropped=dropped,
    )


def make_engine(text, registry, planned=1, targeted=1, grace=0.0):
    engine = CentralEngine(grace_seconds=grace)
    engine.register(central_obj(text, registry), planned, targeted)
    return engine


class TestWindowsAndGrouping:
    def test_grouped_counts_per_window(self, registry):
        engine = make_engine(
            "select bid.city, COUNT(*) from bid window 10s group by bid.city;",
            registry,
        )
        events = [
            ev("bid", 1, 1.0, city="A"), ev("bid", 2, 2.0, city="A"),
            ev("bid", 3, 3.0, city="B"), ev("bid", 4, 11.0, city="A"),
        ]
        engine.ingest(batch(events))
        results = engine.advance(now=25.0)
        assert len(results) == 2
        w0, w1 = results
        assert dict((r[0], r[1]) for r in w0.rows) == {"A": 2, "B": 1}
        assert dict((r[0], r[1]) for r in w1.rows) == {"A": 1}
        assert w0.window_start == 0.0 and w0.window_end == 10.0

    def test_global_aggregates(self, registry):
        engine = make_engine(
            "select COUNT(*), SUM(bid.bid_price), AVG(bid.bid_price), "
            "MIN(bid.bid_price), MAX(bid.bid_price) from bid window 10s;",
            registry,
        )
        engine.ingest(batch([
            ev("bid", 1, 1.0, bid_price=1.0),
            ev("bid", 2, 2.0, bid_price=3.0),
        ]))
        (result,) = engine.advance(now=20.0)
        assert result.rows[0].values == (2, 4.0, 2.0, 1.0, 3.0)

    def test_arithmetic_over_aggregate(self, registry):
        """Paper Fig. 13: 1000*AVG(cost)."""
        engine = make_engine(
            "select 1000 * AVG(bid.bid_price) from bid window 10s;", registry
        )
        engine.ingest(batch([ev("bid", 1, 1.0, bid_price=0.002)]))
        (result,) = engine.advance(20.0)
        assert result.rows[0][0] == pytest.approx(2.0)

    def test_raw_selection_rows(self, registry):
        engine = make_engine(
            "select bid.city, bid.bid_price from bid window 10s;", registry
        )
        engine.ingest(batch([
            ev("bid", 1, 1.0, city="A", bid_price=1.0),
            ev("bid", 2, 2.0, city="B", bid_price=2.0),
        ]))
        (result,) = engine.advance(20.0)
        assert result.as_dicts() == [
            {"bid.city": "A", "bid.bid_price": 1.0},
            {"bid.city": "B", "bid.bid_price": 2.0},
        ]

    def test_residual_predicate_filters_centrally(self, registry):
        engine = make_engine(
            "select COUNT(*) from bid where 1 = 1 window 10s;", registry
        )
        engine.ingest(batch([ev("bid", 1, 1.0)]))
        (result,) = engine.advance(20.0)
        assert result.rows[0][0] == 1

    def test_empty_window_not_emitted(self, registry):
        engine = make_engine("select COUNT(*) from bid window 10s;", registry)
        engine.ingest(batch([ev("bid", 1, 1.0)]))
        results = engine.advance(100.0)
        # Only window 0 had data; silent gaps produce no windows.
        assert [r.window_start for r in results] == [0.0]

    def test_group_rows_deterministically_ordered(self, registry):
        engine = make_engine(
            "select bid.city, COUNT(*) from bid window 10s group by bid.city;",
            registry,
        )
        engine.ingest(batch([
            ev("bid", 1, 1.0, city="B"), ev("bid", 2, 1.5, city="A"),
        ]))
        (result,) = engine.advance(20.0)
        assert [r[0] for r in result.rows] == ["A", "B"]


class TestJoinQueries:
    def test_join_on_request_id(self, registry):
        engine = make_engine(
            "select exclusion.reason, COUNT(*) from bid, exclusion "
            "where bid.exchange_id = 5 window 10s group by exclusion.reason;",
            registry,
        )
        engine.ingest(batch([
            ev("bid", 1, 1.0, exchange_id=5),
            ev("exclusion", 1, 1.1, reason="GEO"),
            ev("exclusion", 1, 1.2, reason="BUDGET"),
            ev("bid", 2, 2.0, exchange_id=5),   # no exclusions
            ev("exclusion", 3, 3.0, reason="GEO"),  # no bid
        ]))
        (result,) = engine.advance(20.0)
        assert dict((r[0], r[1]) for r in result.rows) == {"GEO": 1, "BUDGET": 1}

    def test_join_across_hosts(self, registry):
        """bid on one host, exclusion on another — joins centrally."""
        engine = make_engine(
            "select COUNT(*) from bid, exclusion window 10s;", registry
        )
        engine.ingest(batch([ev("bid", 7, 1.0, host="bidhost")], host="bidhost"))
        engine.ingest(batch([ev("exclusion", 7, 1.3, host="adhost")], host="adhost"))
        (result,) = engine.advance(20.0)
        assert result.rows[0][0] == 1

    def test_cross_type_residual_predicate(self, registry):
        engine = make_engine(
            "select COUNT(*) from bid, exclusion "
            "where bid.exchange_id = exclusion.exchange_id window 10s;",
            registry,
        )
        engine.ingest(batch([
            ev("bid", 1, 1.0, exchange_id=5),
            ev("exclusion", 1, 1.1, exchange_id=5),
            ev("bid", 2, 2.0, exchange_id=5),
            ev("exclusion", 2, 2.1, exchange_id=6),  # mismatched
        ]))
        (result,) = engine.advance(20.0)
        assert result.rows[0][0] == 1

    def test_join_window_isolation(self, registry):
        """Events of the same request in different windows do not join."""
        engine = make_engine(
            "select COUNT(*) from bid, exclusion window 10s;", registry
        )
        engine.ingest(batch([
            ev("bid", 1, 9.0),
            ev("exclusion", 1, 11.0),  # lands in the next window
        ]))
        results = engine.advance(30.0)
        assert all(r.rows[0][0] == 0 for r in results if r.rows)


class TestAccountingAndLifecycle:
    def test_late_events_counted(self, registry):
        engine = make_engine("select COUNT(*) from bid window 10s;", registry)
        engine.ingest(batch([ev("bid", 1, 1.0)]))
        engine.advance(20.0)
        engine.ingest(batch([ev("bid", 2, 2.0)]))  # window 0 already closed
        results = engine.advance(40.0)
        assert engine.stats.events_late == 1

    def test_host_drops_attributed(self, registry):
        engine = make_engine("select COUNT(*) from bid window 10s;", registry)
        engine.ingest(batch([ev("bid", 1, 1.0)], dropped=5))
        (result,) = engine.advance(20.0)
        assert result.host_dropped == 5

    def test_contributing_hosts(self, registry):
        engine = make_engine("select COUNT(*) from bid window 10s;", registry)
        engine.ingest(batch([ev("bid", 1, 1.0, host="h1")], host="h1"))
        engine.ingest(batch([ev("bid", 2, 2.0, host="h2")], host="h2"))
        (result,) = engine.advance(20.0)
        assert result.contributing_hosts == 2

    def test_finish_drains_open_windows(self, registry):
        engine = make_engine("select COUNT(*) from bid window 10s;", registry)
        engine.ingest(batch([ev("bid", 1, 1.0)]))
        results = engine.finish("q1")
        assert len(results.windows) == 1
        assert not engine.is_registered("q1")

    def test_finish_without_drain(self, registry):
        engine = make_engine("select COUNT(*) from bid window 10s;", registry)
        engine.ingest(batch([ev("bid", 1, 1.0)]))
        results = engine.finish("q1", drain=False)
        assert len(results.windows) == 0

    def test_unknown_query_operations(self, registry):
        engine = CentralEngine()
        with pytest.raises(QueryNotFoundError):
            engine.finish("zzz")
        with pytest.raises(QueryNotFoundError):
            engine.results_so_far("zzz")

    def test_batch_for_finished_query_dropped_silently(self, registry):
        engine = make_engine("select COUNT(*) from bid window 10s;", registry)
        engine.finish("q1")
        engine.ingest(batch([ev("bid", 1, 1.0)]))  # no exception

    def test_duplicate_registration_rejected(self, registry):
        engine = make_engine("select COUNT(*) from bid;", registry)
        with pytest.raises(ScrubExecutionError, match="already registered"):
            engine.register(central_obj("select COUNT(*) from bid;", registry))

    def test_targeted_exceeds_planned_rejected(self, registry):
        engine = CentralEngine()
        with pytest.raises(ScrubExecutionError):
            engine.register(
                central_obj("select COUNT(*) from bid;", registry),
                planned_hosts=2, targeted_hosts=5,
            )

    def test_on_window_callback(self, registry):
        seen = []
        engine = CentralEngine(grace_seconds=0.0, on_window=seen.append)
        engine.register(central_obj("select COUNT(*) from bid window 10s;", registry))
        engine.ingest(batch([ev("bid", 1, 1.0)]))
        engine.advance(20.0)
        assert len(seen) == 1


class TestSamplingEstimates:
    def test_host_sampling_count_estimate(self, registry):
        """COUNT under host sampling uses (N/n)·ΣM_i with exact M_i."""
        engine = make_engine(
            "select COUNT(*) from bid sample hosts 50% window 10s;",
            registry, planned=10, targeted=5,
        )
        for h in range(5):
            engine.ingest(batch(
                [ev("bid", h, 1.0, host=f"h{h}")],
                host=f"h{h}", seen={("bid", 0): 20},
            ))
        (result,) = engine.advance(20.0)
        est = result.estimates["COUNT(*)"]
        assert est.estimate == pytest.approx(200.0)  # (10/5) * 5*20
        assert result.rows[0][0] == pytest.approx(200.0)  # row uses the estimate
        assert est.error_bound == pytest.approx(0.0)  # identical machines

    def test_event_sampling_sum_estimate(self, registry):
        engine = make_engine(
            "select SUM(bid.bid_price) from bid sample events 50% window 10s;",
            registry, planned=1, targeted=1,
        )
        # Host saw 10 matches, shipped 5 with value 2.0 each.
        events = [ev("bid", i, 1.0, bid_price=2.0) for i in range(5)]
        engine.ingest(batch(events, seen={("bid", 0): 10}))
        (result,) = engine.advance(20.0)
        est = result.estimates["SUM(bid.bid_price)"]
        assert est.estimate == pytest.approx(20.0)  # (10/5)*10.0
        assert result.rows[0][0] == pytest.approx(20.0)

    def test_silent_hosts_count_as_zero(self, registry):
        """Targeted hosts that reported nothing must drag estimates down."""
        engine = make_engine(
            "select COUNT(*) from bid sample hosts 50% window 10s;",
            registry, planned=8, targeted=4,
        )
        engine.ingest(batch([ev("bid", 1, 1.0)], host="h1", seen={("bid", 0): 12}))
        # 3 other targeted hosts silent.
        (result,) = engine.advance(20.0)
        est = result.estimates["COUNT(*)"]
        assert est.estimate == pytest.approx((8 / 4) * 12)
        assert est.error_bound > 0  # unequal machines -> real uncertainty

    def test_grouped_query_uses_ht_scaling(self, registry):
        engine = make_engine(
            "select bid.city, COUNT(*) from bid sample events 25% "
            "window 10s group by bid.city;",
            registry, planned=1, targeted=1,
        )
        engine.ingest(batch([ev("bid", i, 1.0, city="A") for i in range(5)]))
        (result,) = engine.advance(20.0)
        assert result.estimates == {}  # no CI machinery for grouped
        assert result.rows[0][1] == pytest.approx(20.0)  # 5 / 0.25

    def test_avg_estimate_is_ratio(self, registry):
        engine = make_engine(
            "select AVG(bid.bid_price) from bid sample events 50% window 10s;",
            registry,
        )
        events = [ev("bid", i, 1.0, bid_price=4.0) for i in range(4)]
        engine.ingest(batch(events, seen={("bid", 0): 8}))
        (result,) = engine.advance(20.0)
        assert result.rows[0][0] == pytest.approx(4.0)

    def test_unsampled_query_has_no_estimates(self, registry):
        engine = make_engine("select COUNT(*) from bid window 10s;", registry)
        engine.ingest(batch([ev("bid", 1, 1.0)]))
        (result,) = engine.advance(20.0)
        assert result.estimates == {}


class TestResultExports:
    def _results(self, registry):
        engine = make_engine(
            "select bid.city, COUNT(*), AVG(bid.bid_price) from bid "
            "window 10s group by bid.city;",
            registry,
        )
        engine.ingest(batch([
            ev("bid", 1, 1.0, city="A", bid_price=1.0),
            ev("bid", 2, 2.0, city="B", bid_price=3.0),
            ev("bid", 3, 12.0, city="A", bid_price=2.0),
        ]))
        return engine.finish("q1")

    def test_to_json_round_trips(self, registry):
        import json

        results = self._results(registry)
        payload = json.loads(results.to_json())
        assert payload["query_id"] == "q1"
        assert payload["columns"][0] == "bid.city"
        assert len(payload["windows"]) == 2
        assert payload["windows"][0]["rows"][0] == ["A", 1, 1.0]

    def test_to_csv_has_header_and_rows(self, registry):
        results = self._results(registry)
        lines = results.to_csv().strip().splitlines()
        assert lines[0] == "window_start,bid.city,COUNT(*),AVG(bid.bid_price)"
        assert len(lines) == 4  # 3 group rows across 2 windows
        assert lines[1].startswith("0.0,A,1,")

    def test_csv_null_and_list_cells(self, registry):
        engine = make_engine(
            "select TOP(2, bid.city), MIN(bid.user_id) from bid window 10s;",
            registry,
        )
        engine.ingest(batch([ev("bid", 1, 1.0, city="A")]))
        results = engine.finish("q1")
        text = results.to_csv()
        assert '"[[""A"", 1]]"' in text  # TOP list rendered as JSON cell
        assert text.strip().endswith(",")  # NULL MIN -> empty cell
