"""Property tests for HAVING evaluation and the extended grammar.

Two independent invariants:

* **Evaluator agreement** — ``groupby._eval_output`` (the post-
  aggregation evaluator HAVING runs through) must implement exactly the
  SQL three-valued logic the row-level paths implement.  We reuse the
  expression/row strategies of ``test_compile_properties`` and check it
  four-way against the reference interpreter, the closure compiler and
  the codegen backend, with aggregate-free expressions whose field
  leaves are bound via the group-values map (which is precisely how a
  grouped HAVING sees its GROUP BY keys).
* **Round-trips** — queries carrying HAVING clauses, sliding windows
  and QUANTILE aggregates survive parse → unparse → parse unchanged.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.central.groupby import _eval_output
from repro.core.query import parse_query, unparse
from repro.core.query.ast import FieldRef
from repro.core.query.codegen import compile_row_expr
from repro.core.query.compile import compile_expr

from .test_compile_properties import (
    FIELDS,
    _getter,
    _outcome,
    evaluate,
    expressions,
    rows,
)


@settings(max_examples=300, deadline=None, derandomize=True)
@given(expr=expressions, row=rows)
def test_having_evaluator_matches_row_paths(expr, row):
    """Four-way: _eval_output == interpreter == closures == codegen."""
    group_values = {FieldRef(None, name): row.get(name) for name in FIELDS}
    reference = _outcome(lambda: evaluate(expr, row))
    assert _outcome(lambda: _eval_output(expr, group_values, {})) == reference
    assert _outcome(lambda: compile_expr(expr, _getter)(row)) == reference
    assert _outcome(lambda: compile_row_expr(expr)(row)) == reference


# -- grammar round-trips -------------------------------------------------------

_aggs = st.sampled_from(
    [
        "COUNT(*)",
        "SUM(bid.bid_price)",
        "AVG(bid.bid_price)",
        "QUANTILE(bid.bid_price, 0.5)",
        "QUANTILE(bid.bid_price, 0.99)",
        "COUNT_DISTINCT(bid.user_id)",
    ]
)
_having_preds = st.sampled_from(
    [
        "COUNT(*) >= 10",
        "COUNT(*) > 2 and SUM(bid.bid_price) < 100.0",
        "QUANTILE(bid.bid_price, 0.9) > 5.0",
        "AVG(bid.bid_price) between 1.0 and 9.0",
        "COUNT(*) > 3 or QUANTILE(bid.bid_price, 0.5) <= 2.5",
        "not COUNT(*) < 2",
    ]
)
_windows = st.sampled_from(
    ["", " window 10s", " window 30s slide 10s", " window 1m slide 500ms"]
)


@st.composite
def _having_queries(draw):
    agg = draw(_aggs)
    grouped = draw(st.booleans())
    group = " group by bid.exchange_id" if grouped else ""
    select = f"bid.exchange_id, {agg}" if grouped else agg
    window = draw(_windows)
    having = draw(st.one_of(st.just(""), _having_preds.map(lambda p: f" having {p}")))
    return f"select {select} from bid{window}{group}{having};"


@settings(max_examples=200, deadline=None, derandomize=True)
@given(text=_having_queries())
def test_having_slide_quantile_round_trip(text):
    q1 = parse_query(text)
    q2 = parse_query(unparse(q1))
    assert q1 == q2
    assert unparse(q2) == unparse(q1)
