"""Tests for event schemas and event instances."""

import pytest

from repro.core.events import (
    HOST,
    REQUEST_ID,
    TIMESTAMP,
    Event,
    EventSchema,
    FieldType,
)


@pytest.fixture
def bid_schema():
    return EventSchema(
        "bid",
        [
            ("exchange_id", "long"),
            ("city", "string"),
            ("country", "string"),
            ("bid_price", "double"),
            ("campaign_id", "long"),
        ],
    )


class TestEventSchema:
    def test_field_order_preserved(self, bid_schema):
        assert bid_schema.field_names == (
            "exchange_id", "city", "country", "bid_price", "campaign_id",
        )

    def test_mapping_input(self):
        schema = EventSchema("x", {"a": "long", "b": FieldType.STRING})
        assert schema.field_names == ("a", "b")
        assert schema.field_type("b") is FieldType.STRING

    def test_duplicate_field_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            EventSchema("x", [("a", "long"), ("a", "string")])

    def test_system_field_clash_rejected(self):
        for name in (REQUEST_ID, TIMESTAMP, HOST):
            with pytest.raises(ValueError, match="system field"):
                EventSchema("x", [(name, "long")])

    def test_bad_event_name(self):
        with pytest.raises(ValueError):
            EventSchema("has space", [("a", "long")])
        with pytest.raises(ValueError):
            EventSchema("", [("a", "long")])

    def test_has_field_covers_system_fields(self, bid_schema):
        assert bid_schema.has_field("city")
        assert bid_schema.has_field(REQUEST_ID)
        assert bid_schema.has_field(TIMESTAMP)
        assert not bid_schema.has_field("nope")

    def test_field_type_lookup(self, bid_schema):
        assert bid_schema.field_type("bid_price") is FieldType.DOUBLE
        assert bid_schema.field_type(REQUEST_ID) is FieldType.LONG
        with pytest.raises(KeyError):
            bid_schema.field_type("nope")

    def test_dotted_path_into_object(self):
        schema = EventSchema("x", [("meta", "object")])
        assert schema.has_field("meta.device.os")
        assert schema.field_type("meta.device") is FieldType.OBJECT

    def test_dotted_path_into_non_object_rejected(self, bid_schema):
        assert not bid_schema.has_field("city.part")

    def test_equality_and_hash(self, bid_schema):
        clone = EventSchema("bid", list(zip(bid_schema.field_names,
                                            ["long", "string", "string", "double", "long"])))
        assert clone == bid_schema
        assert hash(clone) == hash(bid_schema)
        other = EventSchema("bid", [("exchange_id", "long")])
        assert other != bid_schema

    def test_coerce_payload(self, bid_schema):
        out = bid_schema.coerce_payload({"exchange_id": 5, "bid_price": 2})
        assert out == {"exchange_id": 5, "bid_price": 2.0}
        with pytest.raises(KeyError):
            bid_schema.coerce_payload({"nope": 1})
        with pytest.raises(TypeError):
            bid_schema.coerce_payload({"bid_price": "high"})


class TestEvent:
    def test_system_fields_via_get(self):
        event = Event("bid", {"city": "Porto"}, request_id=7, timestamp=12.5, host="h1")
        assert event.get(REQUEST_ID) == 7
        assert event.get(TIMESTAMP) == 12.5
        assert event.get(HOST) == "h1"
        assert event.get("city") == "Porto"

    def test_missing_field_is_none(self):
        event = Event("bid", {}, 1, 0.0)
        assert event.get("city") is None

    def test_dotted_path_resolution(self):
        event = Event("e", {"meta": {"device": {"os": "linux"}}}, 1, 0.0)
        assert event.get("meta.device.os") == "linux"
        assert event.get("meta.device.missing") is None
        assert event.get("meta.nope.os") is None

    def test_dotted_path_through_non_dict_is_none(self):
        event = Event("e", {"meta": "flat"}, 1, 0.0)
        assert event.get("meta.device") is None

    def test_literal_dotted_key_wins_over_path(self):
        event = Event("e", {"a.b": 1, "a": {"b": 2}}, 1, 0.0)
        assert event.get("a.b") == 1

    def test_project_keeps_system_fields(self):
        event = Event("bid", {"city": "Porto", "country": "PT"}, 9, 3.0, "h2")
        slim = event.project(("city",))
        assert slim.payload == {"city": "Porto"}
        assert slim.request_id == 9
        assert slim.timestamp == 3.0
        assert slim.host == "h2"

    def test_project_with_absent_field(self):
        event = Event("bid", {"city": "Porto"}, 1, 0.0)
        slim = event.project(("city", "country"))
        assert slim.payload == {"city": "Porto"}

    def test_to_dict(self):
        event = Event("bid", {"city": "Porto"}, 1, 2.0, "h")
        d = event.to_dict()
        assert d == {"city": "Porto", REQUEST_ID: 1, TIMESTAMP: 2.0, HOST: "h"}

    def test_checked_validates(self):
        schema = EventSchema("bid", [("bid_price", "double")])
        event = Event.checked(schema, {"bid_price": 3}, 1, 0.0)
        assert event.payload["bid_price"] == 3.0
        with pytest.raises(KeyError):
            Event.checked(schema, {"oops": 1}, 1, 0.0)

    def test_equality(self):
        a = Event("bid", {"x": 1}, 1, 2.0, "h")
        b = Event("bid", {"x": 1}, 1, 2.0, "h")
        c = Event("bid", {"x": 2}, 1, 2.0, "h")
        assert a == b
        assert a != c

    def test_approx_size_monotone_in_payload(self):
        small = Event("bid", {"city": "P"}, 1, 0.0)
        big = Event("bid", {"city": "P" * 100}, 1, 0.0)
        assert big.approx_size() > small.approx_size()

    def test_approx_size_counts_nested(self):
        event = Event("e", {"lst": [1, 2, 3], "obj": {"k": "v"}}, 1, 0.0)
        assert event.approx_size() > 24
