"""Tests for expression compilation: SQL three-valued logic, LIKE, arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import Event
from repro.core.query.compile import compile_expr, compile_predicate, like_to_regex
from repro.core.query.parser import parse_expression


def _getter(_event_type, field):
    return lambda event: event.get(field)


def ev(**payload):
    return Event("t", payload, request_id=1, timestamp=0.0)


def eval_expr(text, event):
    return compile_expr(parse_expression(text), _getter)(event)


def check(text, event):
    return compile_predicate(parse_expression(text), _getter)(event)


class TestComparisons:
    def test_basic_ops(self):
        e = ev(x=5)
        assert eval_expr("x = 5", e) is True
        assert eval_expr("x != 5", e) is False
        assert eval_expr("x < 6", e) is True
        assert eval_expr("x <= 5", e) is True
        assert eval_expr("x > 5", e) is False
        assert eval_expr("x >= 6", e) is False

    def test_null_comparisons_are_unknown(self):
        e = ev()
        assert eval_expr("x = 5", e) is None
        assert eval_expr("x != 5", e) is None
        assert eval_expr("x < 5", e) is None

    def test_type_mismatch_yields_null_not_crash(self):
        e = ev(x="str")
        assert eval_expr("x < 5", e) is None

    def test_string_equality(self):
        e = ev(city="Porto")
        assert eval_expr("city = 'Porto'", e) is True
        assert eval_expr("city = 'porto'", e) is False


class TestBooleanLogic:
    def test_and_short_circuit_false(self):
        e = ev(a=1)  # b missing -> unknown
        assert eval_expr("a = 2 and b = 1", e) is False

    def test_and_with_unknown(self):
        e = ev(a=1)
        assert eval_expr("a = 1 and b = 1", e) is None

    def test_or_true_dominates_unknown(self):
        e = ev(a=1)
        assert eval_expr("a = 1 or b = 1", e) is True

    def test_or_with_unknown(self):
        e = ev(a=1)
        assert eval_expr("a = 2 or b = 1", e) is None

    def test_not_unknown_is_unknown(self):
        e = ev()
        assert eval_expr("not x = 1", e) is None

    def test_predicate_treats_unknown_as_reject(self):
        e = ev()
        assert check("x = 1", e) is False
        assert check("not x = 1", e) is False  # NOT UNKNOWN is still not TRUE

    def test_empty_predicate_accepts_all(self):
        assert compile_predicate(None, _getter)(ev()) is True


class TestInBetweenNull:
    def test_in(self):
        e = ev(x=2)
        assert eval_expr("x in (1, 2, 3)", e) is True
        assert eval_expr("x in (4, 5)", e) is False
        assert eval_expr("x not in (4, 5)", e) is True

    def test_in_with_null_member_sql_semantics(self):
        e = ev(x=9)
        assert eval_expr("x in (1, null)", e) is None

    def test_in_on_null_operand(self):
        assert eval_expr("x in (1, 2)", ev()) is None

    def test_between(self):
        e = ev(x=3)
        assert eval_expr("x between 1 and 5", e) is True
        assert eval_expr("x between 4 and 5", e) is False
        assert eval_expr("x not between 4 and 5", e) is True

    def test_between_null(self):
        assert eval_expr("x between 1 and 5", ev()) is None

    def test_is_null(self):
        assert eval_expr("x is null", ev()) is True
        assert eval_expr("x is null", ev(x=1)) is False
        assert eval_expr("x is not null", ev(x=1)) is True


class TestLike:
    def test_percent_wildcard(self):
        e = ev(city="San Jose")
        assert eval_expr("city like 'San%'", e) is True
        assert eval_expr("city like '%Jose'", e) is True
        assert eval_expr("city like '%an%'", e) is True
        assert eval_expr("city like 'San'", e) is False

    def test_underscore_wildcard(self):
        e = ev(code="A1B")
        assert eval_expr("code like 'A_B'", e) is True
        assert eval_expr("code like 'A__B'", e) is False

    def test_regex_metacharacters_escaped(self):
        e = ev(s="a.b")
        assert eval_expr("s like 'a.b'", e) is True
        assert eval_expr("s like 'axb'", e) is False

    def test_like_null(self):
        assert eval_expr("city like 'x%'", ev()) is None

    def test_like_regex_cached(self):
        assert like_to_regex("San%") is like_to_regex("San%")


class TestArithmetic:
    def test_basic(self):
        e = ev(x=10, y=4)
        assert eval_expr("x + y", e) == 14
        assert eval_expr("x - y", e) == 6
        assert eval_expr("x * y", e) == 40
        assert eval_expr("x / y", e) == 2.5
        assert eval_expr("x % y", e) == 2

    def test_division_by_zero_is_null(self):
        e = ev(x=10, y=0)
        assert eval_expr("x / y", e) is None
        assert eval_expr("x % y", e) is None

    def test_null_propagation(self):
        e = ev(x=10)
        assert eval_expr("x + y", e) is None
        assert eval_expr("-y", e) is None

    def test_unary_minus(self):
        assert eval_expr("-x", ev(x=5)) == -5

    def test_literal_arithmetic(self):
        assert eval_expr("1000 * 2", ev()) == 2000


class TestAggregateCompileRejected:
    def test_aggregate_cannot_compile_per_row(self):
        from repro.core.query.errors import ScrubValidationError

        with pytest.raises(ScrubValidationError, match="aggregate"):
            compile_expr(parse_expression("COUNT(*)"), _getter)


# -- property: predicate evaluation matches Python semantics on known fields -----


@settings(max_examples=200, deadline=None)
@given(
    x=st.integers(min_value=-100, max_value=100),
    low=st.integers(min_value=-100, max_value=100),
    high=st.integers(min_value=-100, max_value=100),
)
def test_between_matches_python(x, low, high):
    result = eval_expr(f"x between {low} and {high}", ev(x=x))
    assert result is (low <= x <= high)


@settings(max_examples=200, deadline=None)
@given(
    x=st.integers(min_value=-50, max_value=50),
    members=st.lists(st.integers(min_value=-50, max_value=50), min_size=1, max_size=6),
)
def test_in_matches_python(x, members):
    text = f"x in ({', '.join(map(str, members))})"
    assert eval_expr(text, ev(x=x)) is (x in members)
