"""Serial vs parallel equivalence for the ShardPool central engine.

The pool (``core/central/pool.py``) must be *observably identical* to
the serial ``CentralEngine`` — same rows in the same order, same
sampling estimates, same drop/late/coverage accounting — with the only
difference being which OS process did the aggregation.  These tests
feed byte-identical batch sequences to a serial engine, a 1-worker pool
and a 4-worker pool and compare the complete result surface.

Sums use dyadic values (multiples of 0.25) on purpose: float addition
is not associative in general, and the pool's merge keeps the serial
left-fold association exactly, so the comparison is ``==``, not
``approx``.  Kept fast and unmarked: this is a tier-1 invariant.
"""

from __future__ import annotations

import pytest

from repro.core.agent.transport import EventBatch, encode_full_batch
from repro.core.api import ManualClock, Scrub
from repro.core.central.engine import CentralEngine
from repro.core.central.pool import ShardPool
from repro.core.events import Event, EventRegistry
from repro.core.query import parse_query, plan_query, validate_query
from repro.core.query.errors import ScrubExecutionError

HEAVY_QUERY = (
    "select bid.exchange_id, COUNT(*), SUM(bid.bid_price), AVG(bid.bid_price), "
    "COUNT_DISTINCT(bid.user_id), TOP(3, bid.user_id) "
    "from bid window 60s group by bid.exchange_id;"
)


def _registry() -> EventRegistry:
    registry = EventRegistry()
    registry.define(
        "bid",
        [("exchange_id", "long"), ("bid_price", "double"), ("user_id", "long")],
    )
    return registry


def _plan(text: str, registry: EventRegistry, query_id: str = "q1"):
    return plan_query(validate_query(parse_query(text), registry), query_id)


def _heavy_batches() -> list[EventBatch]:
    """Three windows of traffic from two hosts, with the estimator/coverage
    metadata (seen counts, a host-side drop) riding on the batches, plus
    one straggler that must be counted late once window 0 has closed."""
    batches = []
    for window in range(3):
        for host in ("h1", "h2"):
            events = [
                Event(
                    "bid",
                    {
                        "exchange_id": (i * 5 + window) % 7,
                        "bid_price": (i % 8) * 0.25,
                        "user_id": (i * 37 + window) % 50,
                    },
                    window * 400 + i,
                    window * 60.0 + (i % 60),
                    host,
                )
                for i in range(200)
            ]
            batches.append(
                EventBatch(
                    host=host,
                    query_id="q1",
                    events=events,
                    seen_counts={("bid", window): 250},
                    dropped=3 if host == "h1" else 0,
                )
            )
    return batches


def _signature(results):
    return results.to_json() + "|" + repr(
        [(w.window_start, w.contributing_hosts) for w in results.windows]
    )


def _run(engine: CentralEngine, registry: EventRegistry, query: str) -> str:
    plan = _plan(query, registry)
    engine.register(
        plan.central_object,
        planned_hosts=2,
        targeted_hosts=2,
        targeted_names=("h1", "h2"),
    )
    for batch in _heavy_batches():
        engine.ingest(batch)
    # Close window 0 (end 60 + grace 1), then deliver a straggler into it:
    # it must be discarded and *counted* identically on every engine.
    engine.advance(61.5)
    engine.ingest(
        EventBatch(
            host="h1",
            query_id="q1",
            events=[
                Event("bid", {"exchange_id": 1, "bid_price": 0.5, "user_id": 1},
                      9_999, 30.0, "h1")
            ],
        )
    )
    return _signature(engine.finish("q1"))


def _run_frames(engine: CentralEngine, registry: EventRegistry, query: str) -> str:
    """`_run`, but every batch crosses the wire codec and enters through
    `ingest_frame` — the zero-copy path scrubd hands the pool."""
    plan = _plan(query, registry)
    engine.register(
        plan.central_object,
        planned_hosts=2,
        targeted_hosts=2,
        targeted_names=("h1", "h2"),
    )
    for batch in _heavy_batches():
        engine.ingest_frame(encode_full_batch(batch))
    engine.advance(61.5)
    engine.ingest_frame(
        encode_full_batch(
            EventBatch(
                host="h1",
                query_id="q1",
                events=[
                    Event("bid", {"exchange_id": 1, "bid_price": 0.5, "user_id": 1},
                          9_999, 30.0, "h1")
                ],
            )
        )
    )
    return _signature(engine.finish("q1"))


@pytest.mark.parametrize(
    "query",
    [
        HEAVY_QUERY,
        "select COUNT(*) from bid window 60s;",
        "select bid.exchange_id, MIN(bid.bid_price), MAX(bid.bid_price) "
        "from bid window 60s group by bid.exchange_id, bid.user_id;",
    ],
    ids=["heavy", "global-count", "two-key-minmax"],
)
def test_pool_matches_serial_engine(query):
    registry = _registry()
    serial = _run(CentralEngine(grace_seconds=1.0), registry, query)
    with ShardPool(workers=1, grace_seconds=1.0) as pool1:
        assert _run(pool1, registry, query) == serial
    with ShardPool(workers=4, grace_seconds=1.0) as pool4:
        assert _run(pool4, registry, query) == serial


@pytest.mark.parametrize(
    "query",
    [
        HEAVY_QUERY,
        "select COUNT(*) from bid window 60s;",
        "select bid.exchange_id, MIN(bid.bid_price), MAX(bid.bid_price) "
        "from bid window 60s group by bid.exchange_id, bid.user_id;",
    ],
    ids=["heavy", "global-count", "two-key-minmax"],
)
def test_frame_ingest_matches_object_ingest(query):
    """The zero-copy frame path must be observably identical to both the
    serial engine and the pool's own object path — results, coverage,
    estimates, drop/late accounting, straggler counting, the lot."""
    registry = _registry()
    serial = _run(CentralEngine(grace_seconds=1.0), registry, query)
    # Serial engine through ingest_frame: decode-then-ingest fallback.
    assert _run_frames(CentralEngine(grace_seconds=1.0), registry, query) == serial
    with ShardPool(workers=1, grace_seconds=1.0) as pool1:
        assert _run_frames(pool1, registry, query) == serial
    with ShardPool(workers=4, grace_seconds=1.0) as pool4:
        assert _run_frames(pool4, registry, query) == serial


def test_frame_ingest_stats_match_object_ingest():
    """Byte/event/batch/late accounting is identical whether batches
    arrive as objects or wire frames (wire_size() is pinned to the
    encoded length, so bytes_received must agree exactly)."""
    registry = _registry()
    object_pool = ShardPool(workers=2, grace_seconds=1.0)
    frame_pool = ShardPool(workers=2, grace_seconds=1.0)
    with object_pool, frame_pool:
        _run(object_pool, registry, HEAVY_QUERY)
        _run_frames(frame_pool, registry, HEAVY_QUERY)
        for field in ("batches_received", "events_received", "bytes_received",
                      "events_late"):
            assert getattr(frame_pool.stats, field) == getattr(
                object_pool.stats, field
            ), field


def test_frame_ingest_raw_selection_falls_back_to_parent():
    """Non-aggregating queries never fan out; a wire frame for one is
    decoded on the parent and keeps exact arrival order."""
    registry = _registry()
    query = "select bid.user_id, bid.bid_price from bid window 60s;"
    events = [
        Event("bid", {"exchange_id": 1, "bid_price": i * 0.25, "user_id": i},
              i, 1.0 + i * 0.01, "h1")
        for i in range(40)
    ]
    with ShardPool(workers=4, grace_seconds=1.0) as pool:
        plan = _plan(query, registry)
        pool.register(plan.central_object)
        assert pool._queries["q1"].parallel is False
        pool.ingest_frame(
            encode_full_batch(EventBatch(host="h1", query_id="q1", events=events))
        )
        results = pool.finish("q1")
    assert [r.values for r in results.rows] == [(i, i * 0.25) for i in range(40)]


def test_frame_ingest_unknown_query_dropped_silently():
    """A frame for a finished query is the expected in-flight race: no
    stats movement, no error — same contract as the object path."""
    with ShardPool(workers=2, grace_seconds=1.0) as pool:
        pool.ingest_frame(
            encode_full_batch(
                EventBatch(
                    host="h1",
                    query_id="gone",
                    events=[Event("bid", {"exchange_id": 1}, 1, 1.0, "h1")],
                )
            )
        )
        assert pool.stats.batches_received == 0
        assert pool.stats.events_received == 0


def test_frame_ingest_metadata_only_batch():
    """A heartbeat flush (seen counts + drops, no events) still lands its
    M_i and drop accounting through the frame path."""
    registry = _registry()
    with ShardPool(workers=2, grace_seconds=1.0) as pool:
        plan = _plan(HEAVY_QUERY, registry)
        pool.register(plan.central_object, planned_hosts=2, targeted_hosts=2,
                      targeted_names=("h1", "h2"))
        pool.ingest_frame(
            encode_full_batch(
                EventBatch(host="h1", query_id="q1", events=[],
                           seen_counts={("bid", 0): 17}, dropped=4)
            )
        )
        rq = pool._queries["q1"]
        assert rq.host_window_acc(0, "h1").seen == 17
        assert rq.dropped_by_window.get(0) == 4
        assert pool.stats.batches_received == 1
        pool.finish("q1")


def test_pool_workers_1_vs_4_identical():
    registry = _registry()
    with ShardPool(workers=1, grace_seconds=1.0) as a:
        with ShardPool(workers=4, grace_seconds=1.0) as b:
            assert _run(a, registry, HEAVY_QUERY) == _run(b, registry, HEAVY_QUERY)


def test_raw_selection_stays_serial_and_ordered():
    """Non-aggregating queries bypass the pool: output rows must keep
    arrival order, which fan-out/merge would scramble."""
    registry = _registry()
    query = "select bid.user_id, bid.bid_price from bid window 60s;"

    def run(engine):
        plan = _plan(query, registry)
        engine.register(plan.central_object)
        events = [
            Event("bid", {"exchange_id": 1, "bid_price": i * 0.25, "user_id": i},
                  i, 1.0 + i * 0.01, "h1")
            for i in range(40)
        ]
        engine.ingest(EventBatch(host="h1", query_id="q1", events=events))
        return engine.finish("q1")

    serial = run(CentralEngine(grace_seconds=1.0))
    with ShardPool(workers=4, grace_seconds=1.0) as pool:
        rq_check = _plan(query, registry)
        pool.register(rq_check.central_object)
        assert pool._queries["q1"].parallel is False
        pool.finish("q1")
        pooled = run(pool)
    assert [r.values for r in pooled.rows] == [r.values for r in serial.rows]
    assert [r.values for r in serial.rows] == [
        (i, i * 0.25) for i in range(40)
    ]


def test_worker_failure_surfaces_as_execution_error():
    """A poisoned event (unhashable group key) fails inside a worker; the
    parent must raise a ScrubExecutionError at close, not hang."""
    registry = EventRegistry()
    registry.define("bid", [("tag", "object"), ("val", "double")])
    with ShardPool(workers=2, grace_seconds=1.0) as pool:
        plan = _plan(
            "select bid.tag, SUM(bid.val) from bid window 60s group by bid.tag;",
            registry,
        )
        pool.register(plan.central_object)
        # Schema types are checked statically, not at log time: a payload
        # that lies about its type reaches SUM inside the worker process
        # and fails there, not in the parent.
        pool.ingest(
            EventBatch(
                host="h1",
                query_id="q1",
                events=[Event("bid", {"tag": "a", "val": "oops"}, 1, 1.0, "h1")],
            )
        )
        with pytest.raises(ScrubExecutionError, match="shard worker"):
            pool.finish("q1")


def test_pool_close_is_idempotent_and_reaps_workers():
    pool = ShardPool(workers=2, grace_seconds=1.0)
    procs = list(pool._procs)
    assert all(p.is_alive() for p in procs)
    pool.close()
    pool.close()
    assert all(not p.is_alive() for p in procs)


def test_finish_without_drain_unregisters_workers():
    registry = _registry()
    with ShardPool(workers=2, grace_seconds=1.0) as pool:
        plan = _plan(HEAVY_QUERY, registry)
        pool.register(plan.central_object)
        pool.ingest(
            EventBatch(
                host="h1",
                query_id="q1",
                events=[
                    Event("bid", {"exchange_id": 1, "bid_price": 0.5,
                                  "user_id": 2}, 7, 1.0, "h1")
                ],
            )
        )
        results = pool.finish("q1", drain=False)
        assert len(results.windows) == 0
        # The pool is still healthy for the next query.
        plan2 = _plan("select COUNT(*) from bid window 60s;", registry, "q2")
        pool.register(plan2.central_object)
        pool.ingest(
            EventBatch(
                host="h1",
                query_id="q2",
                events=[
                    Event("bid", {"exchange_id": 1, "bid_price": 0.5,
                                  "user_id": 2}, 8, 1.0, "h1")
                ],
            )
        )
        assert pool.finish("q2").rows[0][0] == 1


def test_scrub_facade_with_workers_matches_serial():
    """End-to-end through the public API, including host-side event
    sampling (the estimates path exercises per-host value merging)."""
    query = (
        "select SUM(bid.bid_price), COUNT(*) from bid "
        "sample events 50% window 60s;"
    )

    def run(workers: int):
        clock = ManualClock(start=1.0)
        with Scrub(clock=clock, grace_seconds=1.0, workers=workers) as scrub:
            scrub.define_event(
                "bid",
                [("exchange_id", "long"), ("bid_price", "double"),
                 ("user_id", "long")],
            )
            hosts = [scrub.add_host(f"h{i}") for i in range(3)]
            handle = scrub.submit(query)
            for i in range(300):
                hosts[i % 3].log(
                    "bid",
                    {"exchange_id": i % 5, "bid_price": (i % 8) * 0.25,
                     "user_id": i % 40},
                    request_id=i,
                )
            results = scrub.finish(handle.query_id)
        return results

    serial = run(0)
    pooled = run(3)
    assert _signature(pooled) == _signature(serial)
    assert pooled.windows[0].estimates.keys() == serial.windows[0].estimates.keys()


def test_scrubd_daemon_uses_pool_when_workers_requested():
    """The --workers flag swaps the daemon's engine for a ShardPool and
    turns per-request shard routing into whole-batch handoff."""
    from repro.live.server import ScrubDaemon

    daemon = ScrubDaemon(port=0, shards=4, workers=2)
    try:
        assert isinstance(daemon.engine, ShardPool)
        assert daemon.engine.workers == 2
        assert daemon._stats()["workers"] == 2
        batch = EventBatch(
            host="h1",
            query_id="q1",
            events=[
                Event("bid", {"exchange_id": 1}, rid, 1.0, "h1")
                for rid in range(8)
            ],
        )
        routed = daemon._route(batch)
        assert len(routed) == 1  # the pool partitions internally
        assert routed[0][1] is batch
    finally:
        daemon.engine.close()

    serial = ScrubDaemon(port=0, shards=4)
    assert not isinstance(serial.engine, ShardPool)
    assert serial._stats()["workers"] == 0
    assert len(serial._route(batch)) > 1  # request-id sharding still on


def test_sim_cluster_with_central_workers_matches_serial():
    """The simulated deployment produces identical results when its
    central facility runs on the pool."""
    from repro.cluster.runtime import SimCluster, run_to_completion
    from repro.core.events import EventRegistry as Registry

    def run(central_workers: int):
        registry = Registry()
        registry.define(
            "bid", [("exchange_id", "long"), ("bid_price", "double")]
        )
        with SimCluster(registry, central_workers=central_workers) as cluster:
            hosts = cluster.add_service("BidServers", "dc1", 2)
            handle = cluster.submit(
                "select bid.exchange_id, COUNT(*), SUM(bid.bid_price) "
                "from bid @[Service in BidServers] window 5s "
                "start now duration 12s group by bid.exchange_id;"
            )
            for i in range(120):
                hosts[i % 2].agent.log(
                    "bid",
                    {"exchange_id": i % 4, "bid_price": (i % 8) * 0.25},
                    request_id=i,
                )
                cluster.run_for(0.05)
            results = run_to_completion(cluster, handle)
        return results

    assert _signature(run(2)) == _signature(run(0))
