"""Differential tests for the QUANTILE sketch.

The sketch (``core/approx/quantile.py``) backs the QUANTILE aggregate;
its two contracts are pinned here against the repo's single exact
percentile implementation (``repro.cluster.metrics.percentile``):

* **accuracy** — every reported quantile is within relative error
  ``alpha`` of the exact rank-based quantile (we allow 3x alpha to
  absorb the nearest-rank vs linear-interpolation definitional gap on
  finite streams);
* **merge algebra** — bucket counts add, so merging any partition of a
  stream (including through pickle, the shard-pool boundary) is
  *bit-identical* to sketching the stream serially.  This is the
  property that lets ``ShardPool(workers=N)`` report exactly what the
  serial engine reports, and it is why the DDSketch shape was chosen
  over a t-digest (whose centroid merge is order-dependent).
"""

from __future__ import annotations

import math
import pickle
import random

import pytest

from repro.cluster.metrics import percentile
from repro.core.approx.quantile import QuantileSketch

SEED = 20180423
QS = (0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999)


def lognormal_stream(n: int, seed: int, mu: float = 2.5, sigma: float = 0.8):
    rng = random.Random(seed)
    return [rng.lognormvariate(mu, sigma) for _ in range(n)]


def uniform_stream(n: int, seed: int, lo: float = 0.5, hi: float = 900.0):
    rng = random.Random(seed)
    return [rng.uniform(lo, hi) for _ in range(n)]


def mixed_sign_stream(n: int, seed: int):
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        roll = rng.random()
        if roll < 0.45:
            out.append(rng.lognormvariate(1.0, 0.6))
        elif roll < 0.9:
            out.append(-rng.lognormvariate(1.5, 0.5))
        else:
            out.append(0.0)
    return out


STREAMS = [
    ("lognormal", lognormal_stream(25_000, SEED)),
    ("uniform", uniform_stream(25_000, SEED + 1)),
    ("mixed_sign", mixed_sign_stream(25_000, SEED + 2)),
]


# -- accuracy vs the exact percentile ------------------------------------------


@pytest.mark.parametrize("name,stream", STREAMS, ids=[s[0] for s in STREAMS])
def test_relative_error_envelope(name, stream):
    sketch = QuantileSketch()
    sketch.update(stream)
    for q in QS:
        exact = percentile(stream, q * 100.0)
        approx = sketch.quantile(q)
        if abs(exact) < 1e-6:
            # Around the sign boundary the sketch answers exactly 0.0.
            assert abs(approx) < 1e-6
        else:
            rel = abs(approx - exact) / abs(exact)
            assert rel <= 3 * sketch.alpha, (q, exact, approx, rel)


def test_extremes_and_singleton():
    sketch = QuantileSketch()
    sketch.add(42.0)
    assert sketch.quantile(0.0) == pytest.approx(42.0, rel=0.01)
    assert sketch.quantile(1.0) == pytest.approx(42.0, rel=0.01)
    sketch.update([1.0, 1000.0])
    assert sketch.quantile(0.0) == pytest.approx(1.0, rel=0.01)
    assert sketch.quantile(1.0) == pytest.approx(1000.0, rel=0.01)


def test_nan_ignored_and_empty_raises():
    sketch = QuantileSketch()
    sketch.add(float("nan"))
    assert sketch.count == 0
    with pytest.raises(ValueError):
        sketch.quantile(0.5)
    with pytest.raises(ValueError):
        QuantileSketch(alpha=0.0)
    sketch.add(1.0)
    with pytest.raises(ValueError):
        sketch.quantile(1.5)


# -- merge algebra -------------------------------------------------------------


@pytest.mark.parametrize("name,stream", STREAMS, ids=[s[0] for s in STREAMS])
def test_partitioned_merge_is_bit_identical(name, stream):
    """Any partitioning (here: 4 pickled shards, like the pool's worker
    boundary) merges back to exactly the serial sketch."""
    serial = QuantileSketch()
    serial.update(stream)

    merged = QuantileSketch()
    for shard_index in range(4):
        shard = QuantileSketch()
        shard.update(stream[shard_index::4])
        merged.merge(pickle.loads(pickle.dumps(shard)))

    assert merged == serial
    for q in QS:
        # Float equality on purpose: the merge must be exact.
        assert merged.quantile(q) == serial.quantile(q)


def test_merge_is_associative_and_commutative():
    parts = [lognormal_stream(5_000, SEED + i) for i in range(3)]
    sketches = []
    for part in parts:
        sketch = QuantileSketch()
        sketch.update(part)
        sketches.append(sketch)

    def fold(order):
        total = QuantileSketch()
        for index in order:
            total.merge(sketches[index])
        return total

    left = fold([0, 1, 2])
    right = fold([2, 0, 1])
    assert left == right
    assert left.quantile(0.99) == right.quantile(0.99)


def test_merge_rejects_mismatched_parameters():
    a = QuantileSketch(alpha=0.01)
    b = QuantileSketch(alpha=0.02)
    with pytest.raises(ValueError):
        a.merge(b)
    with pytest.raises(TypeError):
        a.merge(object())  # type: ignore[arg-type]


def test_bucket_count_is_logarithmic():
    """25k lognormal values spanning ~4 decades fit in a few hundred
    buckets — the memory bound that makes QUANTILE shippable."""
    sketch = QuantileSketch()
    sketch.update(lognormal_stream(25_000, SEED))
    assert sketch.bucket_count < 600
    assert "count=25000" in repr(sketch)


def test_zero_and_min_value_band():
    sketch = QuantileSketch(min_value=0.5)
    sketch.update([0.0, 0.1, -0.2, 10.0])
    # Everything inside (-min_value, min_value) lands on the exact zero
    # counter; the walk reports 0.0 for those ranks.
    assert sketch.quantile(0.25) == 0.0
    assert math.isclose(sketch.quantile(1.0), 10.0, rel_tol=0.05)
