"""Tests for the host/central query-object split."""

import pytest

from repro.core.events import EventRegistry
from repro.core.query import (
    DEFAULT_DURATION_SECONDS,
    DEFAULT_WINDOW_SECONDS,
    BoolOp,
    parse_query,
    plan_query,
    unparse,
    validate_query,
)


@pytest.fixture
def registry():
    r = EventRegistry()
    r.define("bid", [
        ("exchange_id", "long"), ("city", "string"), ("bid_price", "double"),
        ("user_id", "long"),
    ])
    r.define("exclusion", [
        ("line_item_id", "long"), ("reason", "string"), ("exchange_id", "long"),
    ])
    return r


def plan(text, registry):
    return plan_query(validate_query(parse_query(text), registry), "q1")


class TestPredicatePushdown:
    def test_single_source_predicate_fully_pushed(self, registry):
        p = plan("select COUNT(*) from bid where bid.exchange_id = 5;", registry)
        host = p.host_object_for("bid")
        assert host.predicate is not None
        assert p.central_object.residual_predicate is None

    def test_join_per_type_conjuncts_split(self, registry):
        p = plan(
            "select COUNT(*) from bid, exclusion "
            "where bid.exchange_id = 5 and exclusion.reason = 'GEO';",
            registry,
        )
        assert "exchange_id" in unparse(p.host_object_for("bid").predicate)
        assert "reason" in unparse(p.host_object_for("exclusion").predicate)
        assert p.central_object.residual_predicate is None

    def test_cross_type_conjunct_stays_central(self, registry):
        p = plan(
            "select COUNT(*) from bid, exclusion "
            "where bid.exchange_id = exclusion.exchange_id;",
            registry,
        )
        assert p.host_object_for("bid").predicate is None
        assert p.host_object_for("exclusion").predicate is None
        assert p.central_object.residual_predicate is not None

    def test_mixed_conjuncts(self, registry):
        p = plan(
            "select COUNT(*) from bid, exclusion "
            "where bid.city = 'Porto' and bid.exchange_id = exclusion.exchange_id "
            "and exclusion.reason = 'GEO';",
            registry,
        )
        assert "city" in unparse(p.host_object_for("bid").predicate)
        assert "reason" in unparse(p.host_object_for("exclusion").predicate)
        assert "exchange_id" in unparse(p.central_object.residual_predicate)

    def test_or_across_types_stays_central(self, registry):
        p = plan(
            "select COUNT(*) from bid, exclusion "
            "where bid.city = 'x' or exclusion.reason = 'y';",
            registry,
        )
        assert p.host_object_for("bid").predicate is None
        assert isinstance(p.central_object.residual_predicate, BoolOp)

    def test_nested_ands_flattened(self, registry):
        p = plan(
            "select COUNT(*) from bid "
            "where (bid.city = 'a' and bid.exchange_id = 1) and bid.user_id = 2;",
            registry,
        )
        host_pred = p.host_object_for("bid").predicate
        assert isinstance(host_pred, BoolOp) and len(host_pred.terms) == 3

    def test_constant_conjunct_stays_central(self, registry):
        p = plan("select COUNT(*) from bid where 1 = 1;", registry)
        assert p.host_object_for("bid").predicate is None
        assert p.central_object.residual_predicate is not None


class TestProjection:
    def test_projection_only_needed_fields(self, registry):
        p = plan(
            "select bid.city, COUNT(*) from bid "
            "where bid.exchange_id = 5 group by bid.city;",
            registry,
        )
        # exchange_id is only used in the host predicate; city is needed
        # centrally for group-by.
        assert p.host_object_for("bid").projection == ("city",)

    def test_count_star_projects_nothing(self, registry):
        p = plan("select COUNT(*) from bid where bid.exchange_id = 5;", registry)
        assert p.host_object_for("bid").projection == ()

    def test_central_residual_fields_projected(self, registry):
        p = plan(
            "select COUNT(*) from bid, exclusion "
            "where bid.exchange_id = exclusion.exchange_id;",
            registry,
        )
        assert p.host_object_for("bid").projection == ("exchange_id",)
        assert p.host_object_for("exclusion").projection == ("exchange_id",)

    def test_dotted_path_projects_root(self, registry):
        registry.define("evt", [("meta", "object")])
        p = plan(
            "select evt.meta.os, COUNT(*) from evt group by evt.meta.os;", registry
        )
        assert p.host_object_for("evt").projection == ("meta",)

    def test_system_fields_not_in_projection(self, registry):
        p = plan(
            "select bid.timestamp, COUNT(*) from bid group by bid.timestamp;",
            registry,
        )
        assert p.host_object_for("bid").projection == ()


class TestDefaultsAndMetadata:
    def test_default_window_and_duration(self, registry):
        p = plan("select COUNT(*) from bid;", registry)
        assert p.central_object.window_seconds == DEFAULT_WINDOW_SECONDS
        assert p.duration == DEFAULT_DURATION_SECONDS

    def test_explicit_window_propagates_to_hosts(self, registry):
        p = plan("select COUNT(*) from bid window 30s;", registry)
        assert p.central_object.window_seconds == 30.0
        assert p.host_object_for("bid").window_seconds == 30.0

    def test_sampling_rates_propagate(self, registry):
        p = plan(
            "select COUNT(*) from bid sample hosts 10% sample events 20%;", registry
        )
        assert p.host_sampling_rate == pytest.approx(0.10)
        assert p.host_object_for("bid").event_sampling_rate == pytest.approx(0.20)
        assert p.central_object.sampling.host_rate == pytest.approx(0.10)

    def test_one_host_object_per_source(self, registry):
        p = plan("select COUNT(*) from bid, exclusion;", registry)
        assert {o.event_type for o in p.host_objects} == {"bid", "exclusion"}
        with pytest.raises(KeyError):
            p.host_object_for("click")

    def test_query_id_tagged_everywhere(self, registry):
        p = plan("select COUNT(*) from bid;", registry)
        assert p.query_id == "q1"
        assert all(o.query_id == "q1" for o in p.host_objects)
        assert p.central_object.query_id == "q1"

    def test_column_names_on_central_object(self, registry):
        p = plan("select COUNT(*) as n from bid;", registry)
        assert p.central_object.column_names == ("n",)
