"""Differential tests for the approximation sketches.

The TOP-K (Space-Saving) and COUNT_DISTINCT (HyperLogLog) aggregates
trade exactness for bounded memory; these tests replay seeded Zipf and
uniform streams against exact counters and check the published error
envelopes — plus the merge algebra the shard pool relies on when it
combines per-worker partial sketches at window close.

Envelopes under test:

* Space-Saving: for every monitored item,
  ``count - error <= true count <= count``, and every item with true
  frequency above ``total/capacity`` is monitored (Metwally et al.).
* HyperLogLog: relative error within a few multiples of the standard
  error ``1.04/sqrt(m)`` (we allow 4x — a fixed seed makes this a
  deterministic check, not a flaky tail bound).
* Merges: HLL register-max merging is lossless and associative;
  Space-Saving merging is exact (and hence associative) while the
  summary is unsaturated, which is how ScrubCentral sizes it
  (``capacity = max(10k, 64)`` for ``TOP(k, ...)``).
"""

from __future__ import annotations

import pickle
import random
from collections import Counter

import pytest

from repro.core.approx.hyperloglog import HyperLogLog
from repro.core.approx.spacesaving import SpaceSaving

SEED = 20180423


def zipf_stream(n: int, universe: int, s: float, seed: int) -> list[str]:
    """A seeded Zipf(s) stream over ``item_0 .. item_{universe-1}``."""
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** s for rank in range(universe)]
    return rng.choices([f"item_{i}" for i in range(universe)], weights, k=n)


def uniform_stream(n: int, universe: int, seed: int) -> list[str]:
    rng = random.Random(seed)
    return [f"item_{rng.randrange(universe)}" for _ in range(n)]


STREAMS = [
    ("zipf_skewed", zipf_stream(30_000, 500, 1.3, SEED)),
    ("zipf_mild", zipf_stream(30_000, 500, 0.8, SEED + 1)),
    ("uniform", uniform_stream(30_000, 500, SEED + 2)),
]


# -- Space-Saving vs exact counts ---------------------------------------------


@pytest.mark.parametrize("name,stream", STREAMS, ids=[s[0] for s in STREAMS])
def test_spacesaving_error_envelope(name, stream):
    capacity = 100
    summary = SpaceSaving(capacity)
    summary.update(stream)
    exact = Counter(stream)

    assert summary.total == len(stream)
    # Guarantee 1: per-item bounds for everything monitored.
    for top in summary.top(capacity):
        true = exact[top.item]
        assert top.count - top.error <= true <= top.count, (name, top)
    # Guarantee 2: every item more frequent than total/capacity is monitored.
    threshold = len(stream) / capacity
    monitored = {top.item for top in summary.top(capacity)}
    for item, count in exact.items():
        if count > threshold:
            assert item in monitored, (name, item, count)


def test_spacesaving_exact_when_unsaturated():
    """With capacity >= distinct cardinality the summary is exact — the
    regime ScrubCentral's TOP(k) runs in (capacity = 10k)."""
    stream = zipf_stream(20_000, 80, 1.1, SEED)
    summary = SpaceSaving(128)
    summary.update(stream)
    exact = Counter(stream)
    for top in summary.top(128):
        assert top.error == 0
        assert top.count == exact[top.item]
    # Reported top-10 ranking matches the exact ranking (ties broken by
    # the summary's deterministic key, so compare the count multisets).
    reported = [t.count for t in summary.top(10)]
    truth = sorted(exact.values(), reverse=True)[:10]
    assert reported == truth


@pytest.mark.parametrize("name,stream", STREAMS, ids=[s[0] for s in STREAMS])
def test_spacesaving_merge_preserves_envelope(name, stream):
    """Merging per-shard partials keeps the Space-Saving guarantees."""
    shards = [SpaceSaving(100) for _ in range(4)]
    for index, item in enumerate(stream):
        shards[index % 4].offer(item)
    merged = shards[0]
    for shard in shards[1:]:
        merged.merge(shard)
    exact = Counter(stream)
    assert merged.total == len(stream)
    for top in merged.top(100):
        assert exact[top.item] <= top.count, (name, top)
        assert top.count - top.error <= exact[top.item], (name, top)


def test_spacesaving_merge_associative_when_unsaturated():
    """merge(a, merge(b, c)) == merge(merge(a, b), c) below saturation."""
    parts = [
        zipf_stream(5_000, 60, 1.0, SEED + i) for i in range(3)
    ]
    def summarize(stream):
        s = SpaceSaving(256)  # > 60 distinct: exact regime
        s.update(stream)
        return s

    def clone(s):
        return pickle.loads(pickle.dumps(s))  # the shard-pool boundary

    a1, b1, c1 = (summarize(p) for p in parts)
    b1.merge(c1)
    a1.merge(b1)  # a . (b . c)

    a2, b2, c2 = (summarize(p) for p in parts)
    a2.merge(clone(b2))
    a2.merge(clone(c2))  # (a . b) . c

    assert a1.total == a2.total
    assert a1.top(256) == a2.top(256)
    exact = Counter(parts[0] + parts[1] + parts[2])
    for top in a1.top(256):
        assert top.count == exact[top.item]
        assert top.error == 0


def test_spacesaving_pickle_roundtrip_is_lossless():
    stream = zipf_stream(10_000, 300, 1.2, SEED)
    summary = SpaceSaving(64)
    summary.update(stream)
    restored = pickle.loads(pickle.dumps(summary))
    assert restored.total == summary.total
    assert restored.capacity == summary.capacity
    assert restored.top(64) == summary.top(64)
    # The restored summary keeps working: same eviction behaviour.
    summary.offer("after", 5)
    restored.offer("after", 5)
    assert restored.top(64) == summary.top(64)


# -- HyperLogLog vs exact cardinalities ---------------------------------------


@pytest.mark.parametrize("true_cardinality", [50, 500, 5_000, 50_000])
def test_hll_error_envelope(true_cardinality):
    sketch = HyperLogLog(precision=12)
    # Duplicates included: cardinality must not drift with multiplicity.
    for i in range(true_cardinality):
        sketch.add(f"user_{i}")
        if i % 3 == 0:
            sketch.add(f"user_{i}")
    relative = abs(sketch.count() - true_cardinality) / true_cardinality
    assert relative <= 4 * sketch.standard_error, (true_cardinality, relative)


@pytest.mark.parametrize("name,stream", STREAMS, ids=[s[0] for s in STREAMS])
def test_hll_matches_exact_on_streams(name, stream):
    sketch = HyperLogLog(precision=12)
    sketch.update(stream)
    true = len(set(stream))
    assert abs(sketch.count() - true) / true <= 4 * sketch.standard_error


def test_hll_merge_is_lossless_and_associative():
    parts = [
        [f"user_{(i * 7 + p) % 4000}" for i in range(6_000)] for p in range(3)
    ]

    def summarize(items):
        sketch = HyperLogLog(precision=12)
        sketch.update(items)
        return sketch

    whole = summarize(parts[0] + parts[1] + parts[2])

    a1, b1, c1 = (summarize(p) for p in parts)
    b1.merge(c1)
    a1.merge(b1)  # a . (b . c)

    a2, b2, c2 = (summarize(p) for p in parts)
    a2.merge(b2)
    a2.merge(c2)  # (a . b) . c

    # Register-max merging is exact: all three sketches are identical.
    assert a1._registers == a2._registers == whole._registers
    assert a1.count() == whole.count()


def test_hll_merge_rejects_mismatched_precision():
    with pytest.raises(ValueError):
        HyperLogLog(precision=12).merge(HyperLogLog(precision=10))
