"""SUBMIT-time handling of the ``TARGET CI x%`` clause and sampling
rates: parsing, structured rejection of malformed clauses, validator
rules, and the unparse roundtrip."""

import pytest

from repro.core.events import EventRegistry
from repro.core.query import parse_query, unparse, validate_query
from repro.core.query.ast import TargetCISpec
from repro.core.query.errors import ScrubSyntaxError, ScrubValidationError


@pytest.fixture
def registry():
    r = EventRegistry()
    r.define("bid", [
        ("exchange_id", "long"), ("bid_price", "double"), ("city", "string"),
    ])
    r.define("impression", [("cost", "double")])
    return r


def validate(text, registry):
    return validate_query(parse_query(text), registry)


class TestParsing:
    def test_parse_target_ci(self):
        q = parse_query(
            "select SUM(bid_price) from bid sample events 10% target ci 5%;"
        )
        assert q.target_ci == TargetCISpec(relative_error=0.05)

    def test_parse_fractional_percentage(self):
        q = parse_query("select COUNT(*) from bid target ci 2.5%;")
        assert q.target_ci.relative_error == pytest.approx(0.025)

    def test_missing_percent_sign_rejected(self):
        with pytest.raises(ScrubSyntaxError, match="'%' after TARGET CI"):
            parse_query("select COUNT(*) from bid target ci 5;")

    def test_missing_number_rejected(self):
        with pytest.raises(ScrubSyntaxError, match="percentage after TARGET CI"):
            parse_query("select COUNT(*) from bid target ci;")

    @pytest.mark.parametrize("pct", ["0", "100", "250", "-5"])
    def test_out_of_range_percentage_rejected(self, pct):
        with pytest.raises(ScrubSyntaxError):
            parse_query(f"select COUNT(*) from bid target ci {pct}%;")

    def test_duplicate_clause_rejected(self):
        with pytest.raises(ScrubSyntaxError, match="duplicate"):
            parse_query("select COUNT(*) from bid target ci 5% target ci 4%;")

    def test_unparse_roundtrip(self):
        text = (
            "select SUM(bid_price) from bid sample events 10% target ci 5%;"
        )
        q = parse_query(text)
        again = parse_query(unparse(q))
        assert again.target_ci == q.target_ci
        assert again.sampling == q.sampling


class TestValidation:
    def test_plain_aggregate_accepted(self, registry):
        q = validate(
            "select SUM(bid_price) from bid sample events 25% target ci 5%;",
            registry,
        )
        assert q.query.target_ci is not None

    def test_full_rate_accepted(self, registry):
        # The controller starts wide-open and relaxes down, so TARGET CI
        # without SAMPLE clauses must be valid.
        q = validate("select COUNT(*) from bid target ci 10%;", registry)
        assert q.query.target_ci is not None

    def test_join_rejected(self, registry):
        with pytest.raises(ScrubValidationError, match="single event type"):
            validate(
                "select COUNT(*) from bid, impression target ci 5%;", registry
            )

    def test_group_by_rejected(self, registry):
        with pytest.raises(ScrubValidationError, match="GROUP BY"):
            validate(
                "select city, COUNT(*) from bid group by city target ci 5%;",
                registry,
            )

    def test_sliding_window_rejected(self, registry):
        with pytest.raises(ScrubValidationError, match="tumbling"):
            validate(
                "select COUNT(*) from bid window 10s slide 5s "
                "target ci 5%;",
                registry,
            )

    def test_host_aggregation_rejected(self, registry):
        with pytest.raises(ScrubValidationError, match="AGGREGATE ON HOSTS"):
            validate(
                "select COUNT(*) from bid aggregate on hosts target ci 5%;",
                registry,
            )

    def test_non_estimable_aggregate_rejected(self, registry):
        with pytest.raises(ScrubValidationError, match="COUNT/SUM/AVG"):
            validate(
                "select MAX(bid_price) from bid target ci 5%;", registry
            )

    def test_spec_construction_bounds(self):
        with pytest.raises(ValueError):
            TargetCISpec(relative_error=0.0)
        with pytest.raises(ValueError):
            TargetCISpec(relative_error=1.0)
        with pytest.raises(ValueError):
            TargetCISpec(relative_error=0.05, confidence=1.0)
