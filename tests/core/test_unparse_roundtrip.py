"""Unparse round-trip: parse(unparse(q)) == q for parsed queries.

This is the invariant that keeps the wire format (query objects can be
shipped as text) and error messages faithful to what the user wrote.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.query import parse_query, unparse

CORPUS = [
    "select COUNT(*) from bid;",
    "select bid.user_id, COUNT(*) from bid group by bid.user_id;",
    "select 1000 * AVG(impression.cost) from impression "
    "where impression.line_item_id = 42 @[Servers in (h1, h2)];",
    "select exclusion.reason, COUNT(*) from bid, exclusion "
    "where bid.exchange_id = 5 and exclusion.reason != 'NONE' "
    "group by exclusion.reason;",
    "select COUNT(*) from impression @[Service in PresentationServers and "
    "Datacenter = DC1] sample hosts 10% sample events 10% window 10s;",
    "select MAX(bid.bid_price), MIN(bid.bid_price) from bid "
    "where bid.bid_price between 0.5 and 5.0;",
    "select COUNT(*) from bid where bid.city like 'San%' or bid.city in ('NY', 'LA');",
    "select COUNT_DISTINCT(bid.user_id) from bid window 1m duration 20m;",
    "select TOP(10, bid.user_id) from bid;",
    "select COUNT(*) from bid where bid.note is null;",
    "select COUNT(*) from bid where bid.note is not null and not bid.price > 3;",
    "select COUNT(*) from bid where bid.x not in (1, 2);",
    "select COUNT(*) from bid where bid.x not between 1 and 2;",
    "select bid.user_id as uid, SUM(bid.bid_price) as spend from bid "
    "group by bid.user_id;",
    "select COUNT(*) from bid start 1000 duration 30m window 500ms;",
    "select COUNT(*) from bid where -bid.x < 5;",
    "select COUNT(*) from bid where bid.meta.device = 'mobile';",
    "select COUNT(*) from bid window 30s slide 10s;",
    "select QUANTILE(bid.bid_price, 0.99) from bid;",
    "select bid.user_id, COUNT(*) from bid group by bid.user_id "
    "having COUNT(*) >= 30;",
    "select bid.user_id, QUANTILE(bid.bid_price, 0.5) from bid "
    "window 20s slide 5s group by bid.user_id "
    "having COUNT(*) > 2 and QUANTILE(bid.bid_price, 0.9) < 10.0;",
]


@pytest.mark.parametrize("text", CORPUS)
def test_round_trip_fixed_corpus(text):
    q1 = parse_query(text)
    q2 = parse_query(unparse(q1))
    assert q1 == q2


@pytest.mark.parametrize("text", CORPUS)
def test_unparse_is_stable(text):
    """unparse is a fixpoint after one round."""
    q1 = parse_query(text)
    once = unparse(q1)
    assert unparse(parse_query(once)) == once


# -- randomized round trips over generated queries --------------------------------

_fields = st.sampled_from(["bid.user_id", "bid.bid_price", "bid.city", "bid.exchange_id"])
_literals = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.floats(min_value=-100, max_value=100, allow_nan=False).map(lambda f: round(f, 3)),
    st.text(alphabet="abcXYZ ", max_size=8),
)
_cmp_ops = st.sampled_from(["=", "!=", "<", "<=", ">", ">="])


@st.composite
def _predicates(draw, depth=0):
    if depth >= 2 or draw(st.booleans()):
        field = draw(_fields)
        op = draw(_cmp_ops)
        lit = draw(_literals)
        lit_text = repr(lit) if not isinstance(lit, str) else "'" + lit + "'"
        return f"{field} {op} {lit_text}"
    parts = [draw(_predicates(depth + 1)) for _ in range(draw(st.integers(2, 3)))]
    joiner = draw(st.sampled_from([" and ", " or "]))
    return "(" + joiner.join(parts) + ")"


@st.composite
def _queries(draw):
    agg = draw(st.sampled_from(
        ["COUNT(*)", "SUM(bid.bid_price)", "AVG(bid.bid_price)",
         "MIN(bid.bid_price)", "MAX(bid.bid_price)",
         "COUNT_DISTINCT(bid.user_id)", "QUANTILE(bid.bid_price, 0.95)"]
    ))
    group = draw(st.sampled_from(["", " group by bid.user_id"]))
    select = f"bid.user_id, {agg}" if group else agg
    where = draw(st.one_of(st.just(""), _predicates().map(lambda p: f" where {p}")))
    window = draw(st.sampled_from(
        ["", " window 10s", " window 2m", " window 10s slide 5s"]
    ))
    having = draw(st.sampled_from(
        ["", " having COUNT(*) > 5", " having QUANTILE(bid.bid_price, 0.5) < 3.0"]
    ))
    sampling = draw(st.sampled_from(["", " sample events 50%", " sample hosts 25%"]))
    return f"select {select} from bid{where}{sampling}{window}{group}{having};"


@settings(max_examples=200, deadline=None)
@given(text=_queries())
def test_round_trip_property(text):
    q1 = parse_query(text)
    q2 = parse_query(unparse(q1))
    assert q1 == q2
