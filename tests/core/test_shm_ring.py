"""The shared-memory ring transport: SPSC ring mechanics and pool wiring.

Three layers of pinning for docs/SCALING.md §"Shared-memory ring
ingest":

* ``ShmRing`` itself — reserve/release arithmetic, wrap-waste layout,
  full-ring refusal, generation checks, unlink lifecycle — including a
  Hypothesis round-trip property over random payload sizes.
* The pool's shm path — the acceptance criterion that the parent ships
  **descriptors only** (zero per-event byte joins: no ``bytes`` payload
  ever crosses the pipe on the fast path), byte-identical results vs
  the serial engine with spills forced by a tiny ring, and a Hypothesis
  differential over random frame sizes vs ring capacity.
* Degradation — capability fallback to pipe-bytes (``transport:
  pipe`` in ``pool_health()``, logged once, never a crash) and
  leak-free shutdown (``close()`` unlinks every segment; respawn
  destroys the dead worker's ring and issues a fresh generation).
"""

from __future__ import annotations

import logging

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.agent.transport import EventBatch, encode_full_batch
from repro.core.central import pool as pool_module
from repro.core.central.engine import CentralEngine
from repro.core.central.pool import ShardPool
from repro.core.central.shm_ring import HEADER_SIZE, RingUnavailable, ShmRing
from repro.core.events import Event, EventRegistry
from repro.core.query import parse_query, plan_query, validate_query

HEAVY_QUERY = (
    "select bid.exchange_id, COUNT(*), SUM(bid.bid_price), "
    "COUNT_DISTINCT(bid.user_id), TOP(3, bid.user_id) "
    "from bid window 60s group by bid.exchange_id;"
)


def _registry() -> EventRegistry:
    registry = EventRegistry()
    registry.define(
        "bid",
        [("exchange_id", "long"), ("bid_price", "double"), ("user_id", "long")],
    )
    return registry


def _plan(text: str, registry: EventRegistry, query_id: str = "q1"):
    return plan_query(validate_query(parse_query(text), registry), query_id)


def _signature(results):
    return results.to_json() + "|" + repr(
        [(w.window_start, w.contributing_hosts) for w in results.windows]
    )


def _bid_events(n: int, hosts: int = 2) -> list[Event]:
    return [
        Event(
            "bid",
            {
                "exchange_id": (i * 5) % 7,
                "bid_price": (i % 8) * 0.25,
                "user_id": (i * 37) % 50,
            },
            i,
            (i % 120) * 1.0,
            f"h{i % hosts}",
        )
        for i in range(n)
    ]


def _run_frames(engine: CentralEngine, registry: EventRegistry,
                batches: list[EventBatch]) -> str:
    plan = _plan(HEAVY_QUERY, registry)
    engine.register(plan.central_object, planned_hosts=2, targeted_hosts=2,
                    targeted_names=("h1", "h2"))
    for batch in batches:
        engine.ingest_frame(encode_full_batch(batch))
    return _signature(engine.finish("q1"))


# -- the ring itself ----------------------------------------------------------


class TestShmRing:
    def test_create_attach_roundtrip(self):
        ring = ShmRing.create(256, generation=3)
        try:
            assert ring.capacity == 256
            assert ring.generation == 3
            other = ShmRing.attach(ring.name, generation=3)
            reserved = ring.try_reserve(5)
            assert reserved is not None
            offset, release = reserved
            ring.data[offset : offset + 5] = b"hello"
            assert bytes(other.payload(offset, 5)) == b"hello"
            other.release(release)
            assert ring.depth() == 0
            other.close()
        finally:
            ring.destroy()

    def test_attach_rejects_generation_mismatch(self):
        ring = ShmRing.create(128, generation=1)
        try:
            with pytest.raises(RingUnavailable, match="generation mismatch"):
                ShmRing.attach(ring.name, generation=2)
        finally:
            ring.destroy()

    def test_attach_capacity_from_header_not_segment_size(self):
        # SharedMemory rounds segments up to the page size; the consumer
        # must trust the header, not the mapping length.
        ring = ShmRing.create(100, generation=0)
        try:
            assert ring.shm.size >= HEADER_SIZE + 100
            other = ShmRing.attach(ring.name, generation=0)
            assert other.capacity == 100
            other.close()
        finally:
            ring.destroy()

    def test_oversize_and_nonpositive_reserve_refused(self):
        ring = ShmRing.create(64, generation=0)
        try:
            assert ring.try_reserve(65) is None
            assert ring.try_reserve(0) is None
            assert ring.try_reserve(-3) is None
            assert ring.try_reserve(64) is not None  # exactly full fits
        finally:
            ring.destroy()

    def test_full_ring_refuses_until_released(self):
        ring = ShmRing.create(64, generation=0)
        try:
            first = ring.try_reserve(40)
            assert first is not None
            assert ring.try_reserve(40) is None  # 24 bytes free
            _, release = first
            ring.release(release)
            assert ring.try_reserve(40) is not None
        finally:
            ring.destroy()

    def test_wrap_wastes_tail_and_stays_contiguous(self):
        ring = ShmRing.create(64, generation=0)
        try:
            off1, rel1 = ring.try_reserve(48)
            assert off1 == 0
            ring.release(rel1)
            # head=48; a 32-byte payload cannot sit at 48..80, so the
            # producer wastes 16 bytes and wraps to offset 0 — the
            # release cursor must cover waste + payload.
            off2, rel2 = ring.try_reserve(32)
            assert off2 == 0
            assert rel2 == 48 + 16 + 32
            assert ring.depth() == 48  # waste counts until released
            ring.release(rel2)
            assert ring.depth() == 0
        finally:
            ring.destroy()

    def test_wrap_refused_when_waste_overflows(self):
        ring = ShmRing.create(64, generation=0)
        try:
            off1, rel1 = ring.try_reserve(48)
            # Consumer has not released: a wrapping 32-byte reserve needs
            # 16 waste + 32 data on top of 48 in flight = 96 > 64.
            assert ring.try_reserve(32) is None
            ring.release(rel1)
            assert ring.try_reserve(32) is not None
        finally:
            ring.destroy()

    def test_high_water_tracks_peak_depth(self):
        ring = ShmRing.create(128, generation=0)
        try:
            _, r1 = ring.try_reserve(50)
            ring.try_reserve(30)
            assert ring.stats()["high_water"] == 80
            ring.release(r1)
            ring.try_reserve(10)
            assert ring.stats()["high_water"] == 80  # peak, not current
        finally:
            ring.destroy()

    def test_destroy_unlinks_segment(self):
        ring = ShmRing.create(128, generation=0)
        name = ring.name
        ring.destroy()
        with pytest.raises(RingUnavailable):
            ShmRing.attach(name, generation=0)

    @settings(max_examples=100, deadline=None)
    @given(
        capacity=st.integers(min_value=8, max_value=256),
        sizes=st.lists(st.integers(min_value=1, max_value=300), max_size=60),
    )
    def test_ring_roundtrip_property(self, capacity, sizes):
        """Random payload sizes through a tiny ring: in-order produce/
        consume round-trips every byte, never hands out an out-of-bounds
        slice, and refusals happen exactly when the span cannot fit."""
        ring = ShmRing.create(capacity, generation=0)
        try:
            pending: list[tuple[int, int, int, bytes]] = []
            for i, size in enumerate(sizes):
                payload = bytes((i + j) % 251 for j in range(size))
                reserved = ring.try_reserve(size)
                if reserved is None:
                    # Must be a genuine can't-fit: oversize, in-flight
                    # bytes, or a wrap whose waste cannot fit — on an
                    # empty ring that needs size > capacity - pos and
                    # size > pos, hence more than half the ring.
                    assert size > capacity or pending or 2 * size > capacity
                    # Drain one pending payload and move on (spill path
                    # in the pool; here we just free space).
                    if pending:
                        off, ln, rel, expect = pending.pop(0)
                        assert bytes(ring.payload(off, ln)) == expect
                        ring.release(rel)
                    continue
                offset, release = reserved
                assert 0 <= offset and offset + size <= capacity
                ring.data[offset : offset + size] = payload
                pending.append((offset, size, release, payload))
            for off, ln, rel, expect in pending:
                assert bytes(ring.payload(off, ln)) == expect
                ring.release(rel)
            assert ring.depth() == 0
        finally:
            ring.destroy()


# -- the pool's shm path ------------------------------------------------------


class _SpyConn:
    """Wraps a worker pipe and records every message kind the parent sends."""

    def __init__(self, conn, sent: list):
        self._conn = conn
        self._sent = sent

    def send(self, message):
        self._sent.append(message)
        self._conn.send(message)

    def __getattr__(self, name):
        return getattr(self._conn, name)


def test_shm_path_ships_descriptors_only():
    """Acceptance criterion: on the shm path the parent performs zero
    per-event byte joins — every ingest-side pipe message is an integer
    descriptor, never a bytes payload."""
    registry = _registry()
    sent: list = []
    with ShardPool(workers=2, grace_seconds=1.0) as pool:
        health = pool.pool_health()
        assert health["transport"] == "shm"
        for worker in pool._workers:
            worker.conn = _SpyConn(worker.conn, sent)
        plan = _plan(HEAVY_QUERY, registry)
        pool.register(plan.central_object)
        for start in range(0, 400, 100):
            events = _bid_events(400)[start : start + 100]
            pool.ingest_frame(
                encode_full_batch(
                    EventBatch(host="h1", query_id="q1", events=events)
                )
            )
        ingest_msgs = [m for m in sent if m[0] in ("frames", "shm", "events")]
        assert ingest_msgs, "nothing was shipped"
        assert all(m[0] == "shm" for m in ingest_msgs)
        for m in ingest_msgs:
            # (qid, window, count, offset, length, release, seq, gen):
            # strings and ints only — no bytes object ever built or sent.
            assert isinstance(m[1], str)
            assert all(isinstance(x, int) for x in m[2:])
        health = pool.pool_health()
        assert health["ring_spills"] == 0
        assert health["ring_bytes_in_place"] > 0
        assert sum(r["descriptors"] for r in health["rings"]) == len(ingest_msgs)
        pool.finish("q1")


def test_tiny_ring_spills_and_results_identical():
    """A ring too small for the traffic must spill to pipe-bytes (counted)
    and still produce byte-identical results — degrade, never deadlock."""
    registry = _registry()
    events = _bid_events(600)
    batches = [
        EventBatch(host=f"h{i % 2 + 1}", query_id="q1",
                   events=events[i * 150 : (i + 1) * 150])
        for i in range(4)
    ]
    serial = _run_frames(CentralEngine(grace_seconds=1.0), registry, batches)
    with ShardPool(workers=2, grace_seconds=1.0, ring_capacity=64) as pool:
        assert _run_frames(pool, registry, batches) == serial
        assert pool.pool_health()["ring_spills"] > 0


@pytest.mark.parametrize("transport", ["shm", "pipe"])
def test_transports_match_serial(transport):
    registry = _registry()
    events = _bid_events(500)
    batches = [
        EventBatch(host=f"h{i % 2 + 1}", query_id="q1",
                   events=events[i * 125 : (i + 1) * 125])
        for i in range(4)
    ]
    serial = _run_frames(CentralEngine(grace_seconds=1.0), registry, batches)
    with ShardPool(workers=4, grace_seconds=1.0, transport=transport) as pool:
        assert _run_frames(pool, registry, batches) == serial
        assert pool.pool_health()["transport"] == transport


@settings(max_examples=8, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=0, max_value=60), min_size=1,
                   max_size=6),
    ring_capacity=st.sampled_from([128, 1024, 1 << 16]),
)
def test_random_frames_vs_ring_capacity_match_serial(sizes, ring_capacity):
    """The ring-wrap Hypothesis property: random frame sizes against
    random ring capacities (small enough to force wraps and spills) stay
    byte-identical to the serial engine's ``ingest_frame``."""
    registry = _registry()
    rid = 0
    batches = []
    for size in sizes:
        events = []
        for _ in range(size):
            events.append(
                Event(
                    "bid",
                    {
                        "exchange_id": (rid * 5) % 7,
                        "bid_price": (rid % 8) * 0.25,
                        "user_id": (rid * 37) % 50,
                    },
                    rid,
                    (rid % 120) * 1.0,
                    f"h{rid % 2 + 1}",
                )
            )
            rid += 1
        batches.append(
            EventBatch(host=events[0].host if events else "h1",
                       query_id="q1", events=events)
        )
    serial = _run_frames(CentralEngine(grace_seconds=1.0), registry, batches)
    with ShardPool(workers=2, grace_seconds=1.0,
                   ring_capacity=ring_capacity) as pool:
        assert _run_frames(pool, registry, batches) == serial


# -- degradation and lifecycle ------------------------------------------------


def test_close_unlinks_every_ring_segment():
    """The descriptor-vs-close satellite: shutdown drains (joins) the
    workers before unlinking, and afterwards no segment exists to leak —
    a re-attach by name must fail."""
    registry = _registry()
    pool = ShardPool(workers=2, grace_seconds=1.0)
    names = [w.ring.name for w in pool._workers]
    assert len(names) == 2
    plan = _plan(HEAVY_QUERY, registry)
    pool.register(plan.central_object)
    pool.ingest_frame(
        encode_full_batch(
            EventBatch(host="h1", query_id="q1", events=_bid_events(50))
        )
    )
    pool.finish("q1")
    pool.close()
    pool.close()  # idempotent, including the unlink pass
    for name in names:
        with pytest.raises(RingUnavailable):
            ShmRing.attach(name, generation=0)


def test_supervise_destroys_old_ring_and_issues_fresh_generation():
    """A respawned worker must never see its predecessor's cursors: the
    old segment is unlinked and the replacement rides a new
    generation-tagged ring."""
    with ShardPool(workers=2, grace_seconds=1.0) as pool:
        old_name = pool._workers[0].ring.name
        pool._supervise(0, "test respawn")
        fresh = pool._workers[0]
        assert fresh.generation == 1
        assert fresh.ring is not None
        assert fresh.ring.name != old_name
        assert fresh.ring.generation == 1
        with pytest.raises(RingUnavailable):
            ShmRing.attach(old_name, generation=0)
        health = pool.pool_health()
        assert health["transport"] == "shm"
        assert health["rings"][0]["generation"] == 1


def test_pipe_transport_surfaces_in_pool_health():
    with ShardPool(workers=2, grace_seconds=1.0, transport="pipe") as pool:
        health = pool.pool_health()
        assert health["transport"] == "pipe"
        assert all(r["transport"] == "pipe" for r in health["rings"])
        assert all(w.ring is None for w in pool._workers)


def test_ring_create_failure_falls_back_to_pipe(monkeypatch, caplog):
    """Capability fallback: if the platform cannot create a ring the pool
    logs once, runs pipe-bytes, and stays fully functional."""
    registry = _registry()

    def boom(capacity, generation):
        raise RingUnavailable("no /dev/shm here")

    monkeypatch.setattr(pool_module.ShmRing, "create", staticmethod(boom))
    events = _bid_events(200)
    batches = [EventBatch(host="h1", query_id="q1", events=events)]
    serial = _run_frames(CentralEngine(grace_seconds=1.0), registry, batches)
    with caplog.at_level(logging.WARNING, logger="repro.core.central.pool"):
        with ShardPool(workers=2, grace_seconds=1.0) as pool:
            health = pool.pool_health()
            assert health["transport"] == "pipe"
            assert all(w.ring is None for w in pool._workers)
            assert _run_frames(pool, registry, batches) == serial
    fallback_logs = [
        r for r in caplog.records if "falling back to pipe-bytes" in r.getMessage()
    ]
    assert len(fallback_logs) == 1  # logged once, not per worker


def test_invalid_transport_and_capacity_rejected():
    with pytest.raises(ValueError, match="transport"):
        ShardPool(workers=1, transport="carrier-pigeon")
    with pytest.raises(ValueError, match="ring_capacity"):
        ShardPool(workers=1, ring_capacity=0)
