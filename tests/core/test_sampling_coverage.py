"""Statistical validation of the two-level sampling error bounds.

``core/approx/sampling_theory.py`` implements the paper's Eqs. 1–3:
two-stage cluster-sampling estimators whose confidence intervals are
the *only* thing standing between a troubleshooter and a silently-wrong
approximate answer.  These tests run many seeded Monte-Carlo trials of
the full two-stage protocol (sample machines, then sample events within
each machine) against known ground truth and check that

* the declared CI covers the true total at no less than the nominal
  rate, up to one-sided binomial sampling noise of the trial count
  itself (with T trials of a p-coverage interval the observed rate
  fluctuates with σ = sqrt(p(1−p)/T); we reject only if coverage falls
  more than 3σ below nominal — a deterministic check under fixed seeds,
  and the correct reading of "no less than nominal" for finite T);
* the point estimate is unbiased across trials (Eq. 1);
* the variance decomposition behaves (Eq. 3): the machine-stage term
  vanishes under a machine census, the event-stage term under full
  event retention, and a full census is exact with a zero-width CI.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.core.approx.sampling_theory import (
    MachineSample,
    estimate_count,
    estimate_sum,
)

SEED = 20180423
TRIALS = 400


def _coverage_floor(nominal: float, trials: int) -> float:
    return nominal - 3.0 * math.sqrt(nominal * (1.0 - nominal) / trials)


def _population(rng: random.Random, machines: int, events_per_machine: int):
    """A heterogeneous fleet: most machines are alike, every fifth one
    runs hotter (the cross-machine variance Eq. 3's first term exists
    for)."""
    return [
        [
            rng.gauss(10.0, 3.0) + (rng.random() * 4 if i % 5 == 0 else 0.0)
            for _ in range(events_per_machine)
        ]
        for i in range(machines)
    ]


def _two_stage_trial(
    rng: random.Random,
    population: list[list[float]],
    sampled_machines: int,
    sampled_events: int,
    confidence: float,
):
    chosen = rng.sample(range(len(population)), sampled_machines)
    samples = [
        MachineSample.from_values(
            len(population[i]), rng.sample(population[i], sampled_events)
        )
        for i in chosen
    ]
    return estimate_sum(samples, len(population), confidence=confidence)


def test_sum_ci_coverage_two_stage():
    rng = random.Random(SEED)
    confidence = 0.95
    covered = 0
    for _ in range(TRIALS):
        population = _population(rng, machines=40, events_per_machine=200)
        true_total = sum(sum(machine) for machine in population)
        est = _two_stage_trial(rng, population, 12, 50, confidence)
        assert est.sampled_machines == 12 and est.total_machines == 40
        if est.low <= true_total <= est.high:
            covered += 1
    coverage = covered / TRIALS
    assert coverage >= _coverage_floor(confidence, TRIALS), coverage


def test_count_ci_coverage_machine_stage():
    """COUNT has no event-stage error (every matching event is counted);
    only machine-stage sampling contributes variance."""
    rng = random.Random(SEED + 1)
    confidence = 0.95
    covered = 0
    for _ in range(TRIALS):
        counts = [rng.randrange(50, 400) for _ in range(60)]
        true_total = sum(counts)
        chosen = rng.sample(range(60), 15)
        est = estimate_count(
            [counts[i] for i in chosen], 60, confidence=confidence
        )
        if est.low <= true_total <= est.high:
            covered += 1
    coverage = covered / TRIALS
    assert coverage >= _coverage_floor(confidence, TRIALS), coverage


def test_sum_estimator_is_unbiased():
    """Eq. 1 in expectation: the mean of τ̂ over many redraws from one
    fixed population lands on the true total."""
    rng = random.Random(SEED + 2)
    population = _population(rng, machines=40, events_per_machine=200)
    true_total = sum(sum(machine) for machine in population)
    estimates = [
        _two_stage_trial(rng, population, 12, 50, 0.95).estimate
        for _ in range(TRIALS)
    ]
    mean = sum(estimates) / len(estimates)
    assert abs(mean - true_total) / true_total < 0.01, (mean, true_total)


def test_eq1_point_estimate_by_hand():
    """τ̂ = (N/n) Σ (M_i/m_i) Σ v_ij, checked against a worked example."""
    samples = [
        MachineSample.from_values(100, [1.0, 2.0, 3.0]),   # τ̂_i = 100/3 · 6
        MachineSample.from_values(50, [4.0, 4.0]),          # τ̂_i = 50/2 · 8
    ]
    est = estimate_sum(samples, total_machines=8, confidence=0.95)
    expected = (8 / 2) * ((100 / 3) * 6.0 + (50 / 2) * 8.0)
    assert est.estimate == pytest.approx(expected)


def test_eq3_machine_term_vanishes_under_census():
    """n = N: only the event-stage term remains, and it shrinks as the
    within-machine sample grows."""
    rng = random.Random(SEED + 3)
    population = _population(rng, machines=10, events_per_machine=400)
    widths = []
    for sampled_events in (20, 80, 320):
        samples = [
            MachineSample.from_values(400, rng.sample(machine, sampled_events))
            for machine in population
        ]
        est = estimate_sum(samples, total_machines=10, confidence=0.95)
        widths.append(est.error_bound)
        assert math.isfinite(est.error_bound)
    assert widths[0] > widths[1] > widths[2]


def test_eq3_event_term_vanishes_with_full_retention():
    """m_i = M_i: per-machine readings are exact; only cross-machine
    sampling contributes, so a machine census on top of that is exact."""
    rng = random.Random(SEED + 4)
    population = _population(rng, machines=12, events_per_machine=50)
    # Full census at both stages: exact, zero-width interval.
    samples = [
        MachineSample.from_values(50, machine) for machine in population
    ]
    est = estimate_sum(samples, total_machines=12, confidence=0.95)
    true_total = sum(sum(machine) for machine in population)
    assert est.estimate == pytest.approx(true_total)
    assert est.error_bound == 0.0
    assert est.variance == 0.0
    # Partial machine stage with full event retention: variance is purely
    # the machine-stage term (it must not be zero for a heterogeneous fleet).
    partial = estimate_sum(samples[:6], total_machines=12, confidence=0.95)
    assert partial.variance > 0.0


def test_higher_confidence_widens_the_interval():
    rng = random.Random(SEED + 5)
    population = _population(rng, machines=30, events_per_machine=100)
    chosen = rng.sample(range(30), 10)
    drawn = [rng.sample(population[i], 25) for i in chosen]
    widths = [
        estimate_sum(
            [MachineSample.from_values(100, values) for values in drawn],
            total_machines=30,
            confidence=confidence,
        ).error_bound
        for confidence in (0.80, 0.90, 0.95, 0.99)
    ]
    assert widths == sorted(widths) and widths[0] < widths[-1]


def test_single_machine_sample_is_honest_about_ignorance():
    """n = 1 of many: no between-machine variance is observable, so the
    bound must be infinite rather than falsely tight."""
    est = estimate_sum(
        [MachineSample.from_values(100, [5.0, 6.0])], total_machines=10
    )
    assert math.isinf(est.error_bound)
    assert math.isinf(estimate_count([120], 10).error_bound)
