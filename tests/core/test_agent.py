"""Tests for the host agent: fast path, selection, projection, sampling,
buffering/drops, spans, flush metadata."""

import math

import pytest

from repro.core.agent import (
    BoundedBuffer,
    EventSampler,
    RecordingTransport,
    ScrubAgent,
)
from repro.core.events import EventRegistry
from repro.core.query import parse_query, plan_query, validate_query


@pytest.fixture
def registry():
    r = EventRegistry()
    r.define("bid", [
        ("exchange_id", "long"), ("city", "string"), ("bid_price", "double"),
        ("user_id", "long"),
    ])
    r.define("click", [("user_id", "long")])
    return r


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


def make_agent(registry, **kwargs):
    transport = RecordingTransport()
    clock = FakeClock()
    agent = ScrubAgent("h1", registry, transport, clock=clock, **kwargs)
    return agent, transport, clock


def host_objects(text, registry, query_id="q1"):
    plan = plan_query(validate_query(parse_query(text), registry), query_id)
    return plan.host_objects


class TestFastPath:
    def test_no_queries_returns_zero(self, registry):
        agent, transport, _ = make_agent(registry)
        assert agent.log("bid", exchange_id=1, request_id=1) == 0
        assert agent.stats.events_logged == 1
        assert agent.stats.events_examined == 0
        agent.flush()
        assert transport.batches == []

    def test_query_on_other_type_not_examined(self, registry):
        agent, _, _ = make_agent(registry)
        (obj,) = host_objects("select COUNT(*) from click;", registry)
        agent.install(obj)
        agent.log("bid", exchange_id=1, request_id=1)
        assert agent.stats.events_examined == 0


class TestSelectionProjection:
    def test_predicate_filters(self, registry):
        agent, transport, _ = make_agent(registry)
        (obj,) = host_objects(
            "select COUNT(*) from bid where bid.exchange_id = 5;", registry
        )
        agent.install(obj)
        assert agent.log("bid", exchange_id=5, request_id=1) == 1
        assert agent.log("bid", exchange_id=6, request_id=2) == 0
        agent.flush()
        assert len(transport.events) == 1

    def test_projection_strips_unneeded_fields(self, registry):
        agent, transport, _ = make_agent(registry)
        (obj,) = host_objects(
            "select bid.city, COUNT(*) from bid where bid.exchange_id = 5 "
            "group by bid.city;",
            registry,
        )
        agent.install(obj)
        agent.log("bid", exchange_id=5, city="Porto", bid_price=1.0, user_id=7,
                  request_id=1)
        agent.flush()
        (event,) = transport.events
        assert event.payload == {"city": "Porto"}  # price/user/exchange stripped
        assert event.request_id == 1  # system fields always kept

    def test_count_star_ships_empty_payload(self, registry):
        agent, transport, _ = make_agent(registry)
        (obj,) = host_objects("select COUNT(*) from bid;", registry)
        agent.install(obj)
        agent.log("bid", exchange_id=1, city="Porto", request_id=9)
        agent.flush()
        assert transport.events[0].payload == {}

    def test_payload_mapping_and_kwargs(self, registry):
        agent, transport, _ = make_agent(registry)
        (obj,) = host_objects("select bid.city from bid;", registry)
        agent.install(obj)
        agent.log("bid", {"city": "A"}, request_id=1)
        agent.log("bid", {"city": "B"}, city="C", request_id=2)  # kwargs win
        agent.flush()
        assert [e.payload["city"] for e in transport.events] == ["A", "C"]

    def test_multiple_queries_same_event(self, registry):
        agent, transport, _ = make_agent(registry)
        (o1,) = host_objects("select COUNT(*) from bid;", registry, "q1")
        (o2,) = host_objects(
            "select COUNT(*) from bid where bid.exchange_id = 5;", registry, "q2"
        )
        agent.install(o1)
        agent.install(o2)
        assert agent.log("bid", exchange_id=5, request_id=1) == 2
        assert agent.log("bid", exchange_id=6, request_id=2) == 1
        agent.flush()
        by_query = {b.query_id: len(b.events) for b in transport.batches}
        assert by_query == {"q1": 2, "q2": 1}

    def test_validate_payloads_mode(self, registry):
        agent, _, _ = make_agent(registry, validate_payloads=True)
        (obj,) = host_objects("select COUNT(*) from bid;", registry)
        agent.install(obj)
        with pytest.raises(TypeError):
            agent.log("bid", bid_price="expensive", request_id=1)


class TestSampling:
    def test_sampler_rate_roughly_honored(self):
        sampler = EventSampler(0.25, "q1")
        kept = sum(sampler.keep(rid) for rid in range(10_000))
        assert 2200 <= kept <= 2800

    def test_sampler_deterministic(self):
        a, b = EventSampler(0.5, "q1"), EventSampler(0.5, "q1")
        assert [a.keep(i) for i in range(100)] == [b.keep(i) for i in range(100)]

    def test_different_queries_sample_differently(self):
        a, b = EventSampler(0.5, "q1"), EventSampler(0.5, "q2")
        assert [a.keep(i) for i in range(200)] != [b.keep(i) for i in range(200)]

    def test_join_coherence(self, registry):
        """Both event types of one request are sampled identically."""
        agent, transport, _ = make_agent(registry)
        objs = host_objects(
            "select COUNT(*) from bid, click sample events 30%;", registry
        )
        for obj in objs:
            agent.install(obj)
        for rid in range(300):
            agent.log("bid", exchange_id=1, request_id=rid)
            agent.log("click", user_id=1, request_id=rid)
        agent.flush()
        bids = {e.request_id for e in transport.events if e.event_type == "bid"}
        clicks = {e.request_id for e in transport.events if e.event_type == "click"}
        assert bids == clicks
        assert 0 < len(bids) < 300

    def test_seen_counts_all_matches_despite_sampling(self, registry):
        agent, transport, _ = make_agent(registry)
        (obj,) = host_objects(
            "select COUNT(*) from bid sample events 10%;", registry
        )
        agent.install(obj)
        for rid in range(100):
            agent.log("bid", exchange_id=1, request_id=rid, timestamp=1.0)
        agent.flush()
        (batch,) = transport.batches
        assert sum(batch.seen_counts.values()) == 100  # M_i is exact
        assert len(batch.events) < 100


class TestBufferAndDrops:
    def test_drop_instead_of_block(self, registry):
        agent, transport, _ = make_agent(
            registry, buffer_capacity=10, flush_batch_size=1_000_000
        )
        (obj,) = host_objects("select COUNT(*) from bid;", registry)
        agent.install(obj)
        for rid in range(50):
            agent.log("bid", exchange_id=1, request_id=rid)
        assert agent.buffered == 10
        assert agent.stats.events_dropped == 40
        agent.flush()
        (batch,) = transport.batches
        assert batch.dropped == 40
        assert len(batch.events) == 10

    def test_auto_flush_at_batch_size(self, registry):
        agent, transport, _ = make_agent(
            registry, buffer_capacity=1000, flush_batch_size=5
        )
        (obj,) = host_objects("select COUNT(*) from bid;", registry)
        agent.install(obj)
        for rid in range(12):
            agent.log("bid", exchange_id=1, request_id=rid)
        assert len(transport.batches) >= 2
        assert agent.stats.events_dropped == 0

    def test_bounded_buffer_semantics(self):
        buf = BoundedBuffer(3)
        assert all(buf.offer(i) for i in range(3))
        assert not buf.offer(99)
        assert buf.dropped == 1
        assert buf.offered == 4
        assert buf.drain() == [0, 1, 2]
        assert len(buf) == 0
        assert buf.offer(7)

    def test_buffer_partial_drain(self):
        buf = BoundedBuffer(10)
        for i in range(6):
            buf.offer(i)
        assert buf.drain(4) == [0, 1, 2, 3]
        assert buf.drain() == [4, 5]

    def test_buffer_invalid_capacity(self):
        with pytest.raises(ValueError):
            BoundedBuffer(0)


class TestSpanAndLifecycle:
    def test_span_gating(self, registry):
        agent, transport, clock = make_agent(registry)
        (obj,) = host_objects("select COUNT(*) from bid;", registry)
        agent.install(obj, activates_at=10.0, expires_at=20.0)
        clock.now = 5.0
        assert agent.log("bid", exchange_id=1, request_id=1) == 0
        clock.now = 15.0
        assert agent.log("bid", exchange_id=1, request_id=2) == 1
        clock.now = 25.0
        assert agent.log("bid", exchange_id=1, request_id=3) == 0

    def test_expired_query_removed_on_flush(self, registry):
        agent, _, clock = make_agent(registry)
        (obj,) = host_objects("select COUNT(*) from bid;", registry)
        agent.install(obj, expires_at=10.0)
        assert agent.active_query_ids == ("q1",)
        clock.now = 11.0
        agent.flush()
        assert agent.active_query_ids == ()

    def test_uninstall_flushes_pending(self, registry):
        agent, transport, _ = make_agent(registry)
        (obj,) = host_objects("select COUNT(*) from bid;", registry)
        agent.install(obj)
        agent.log("bid", exchange_id=1, request_id=1)
        assert agent.uninstall("q1")
        assert len(transport.events) == 1
        assert not agent.uninstall("q1")

    def test_install_unknown_event_type(self, registry):
        agent, _, _ = make_agent(registry)
        other = EventRegistry()
        other.define("mystery", [("x", "long")])
        (obj,) = host_objects("select COUNT(*) from mystery;", other)
        with pytest.raises(KeyError, match="mystery"):
            agent.install(obj)

    def test_query_stats(self, registry):
        agent, _, _ = make_agent(registry)
        (obj,) = host_objects(
            "select COUNT(*) from bid where bid.exchange_id = 5;", registry
        )
        agent.install(obj)
        agent.log("bid", exchange_id=5, request_id=1)
        agent.log("bid", exchange_id=6, request_id=2)
        stats = agent.query_stats("q1")
        assert stats.seen == 1
        assert stats.shipped == 1
        with pytest.raises(KeyError):
            agent.query_stats("zzz")


class TestFlushMetadata:
    def test_seen_counts_binned_by_window(self, registry):
        agent, transport, _ = make_agent(registry)
        (obj,) = host_objects("select COUNT(*) from bid window 10s;", registry)
        agent.install(obj)
        agent.log("bid", exchange_id=1, request_id=1, timestamp=5.0)
        agent.log("bid", exchange_id=1, request_id=2, timestamp=15.0)
        agent.log("bid", exchange_id=1, request_id=3, timestamp=16.0)
        agent.flush()
        (batch,) = transport.batches
        assert batch.seen_counts == {("bid", 0): 1, ("bid", 1): 2}

    def test_seen_counts_reset_between_flushes(self, registry):
        agent, transport, _ = make_agent(registry)
        (obj,) = host_objects("select COUNT(*) from bid window 10s;", registry)
        agent.install(obj)
        agent.log("bid", exchange_id=1, request_id=1, timestamp=1.0)
        agent.flush()
        agent.log("bid", exchange_id=1, request_id=2, timestamp=2.0)
        agent.flush()
        assert transport.batches[0].seen_counts == {("bid", 0): 1}
        assert transport.batches[1].seen_counts == {("bid", 0): 1}

    def test_heartbeat_batch_without_events(self, registry):
        """Sampling may ship nothing, but M_i must still reach central."""
        agent, transport, _ = make_agent(registry)
        (obj,) = host_objects(
            "select COUNT(*) from bid sample events 1%;", registry
        )
        agent.install(obj)
        # Find request ids the sampler rejects.
        sampler = EventSampler(0.01, "q1")
        rejected = [rid for rid in range(200) if not sampler.keep(rid)][:5]
        for rid in rejected:
            agent.log("bid", exchange_id=1, request_id=rid, timestamp=1.0)
        agent.flush()
        (batch,) = transport.batches
        assert batch.events == []
        assert sum(batch.seen_counts.values()) == 5

    def test_no_batch_when_nothing_happened(self, registry):
        agent, transport, _ = make_agent(registry)
        (obj,) = host_objects("select COUNT(*) from bid;", registry)
        agent.install(obj)
        agent.flush()
        assert transport.batches == []

    def test_log_object_api(self, registry):
        from repro.core.events import scrub_field, scrub_type

        agent, transport, _ = make_agent(registry)

        @scrub_type("click", registry)
        class Click:
            user_id = scrub_field("long")

        (obj,) = host_objects("select click.user_id from click;", registry)
        agent.install(obj)
        assert agent.log_object(Click(user_id=3), request_id=4) == 1
        agent.flush()
        assert transport.events[0].payload == {"user_id": 3}


class TestAdmissionControl:
    def test_query_limit_enforced(self, registry):
        transport = RecordingTransport()
        agent = ScrubAgent("h1", registry, transport, max_queries=2)
        (o1,) = host_objects("select COUNT(*) from bid;", registry, "q1")
        (o2,) = host_objects("select COUNT(*) from bid;", registry, "q2")
        (o3,) = host_objects("select COUNT(*) from bid;", registry, "q3")
        agent.install(o1)
        agent.install(o2)
        with pytest.raises(RuntimeError, match="query limit"):
            agent.install(o3)
        # Uninstalling frees a slot.
        agent.uninstall("q1")
        agent.install(o3)
        assert set(agent.active_query_ids) == {"q2", "q3"}

    def test_limit_counts_queries_not_host_objects(self, registry):
        """A join query installs one object per event type but occupies
        a single query slot."""
        transport = RecordingTransport()
        agent = ScrubAgent("h1", registry, transport, max_queries=1)
        objs = host_objects("select COUNT(*) from bid, click;", registry, "q1")
        for obj in objs:
            agent.install(obj)
        assert agent.active_query_ids == ("q1",)

    def test_server_rolls_back_when_limit_hit_mid_fleet(self, registry):
        from repro.core import ManualClock, Scrub

        scrub = Scrub(clock=ManualClock())
        scrub.define_event("bid", [("exchange_id", "long")])
        roomy = scrub.add_host("roomy", services=["S"])
        # Replace the second host's agent with a zero-capacity one.
        cramped = ScrubAgent(
            "cramped", scrub.registry,
            RecordingTransport(), max_queries=0,
        )
        scrub.directory.add_host("cramped", cramped, services=["S"])
        with pytest.raises(RuntimeError, match="query limit"):
            scrub.submit("select COUNT(*) from bid @[Service in S];")
        assert roomy.active_query_ids == ()
