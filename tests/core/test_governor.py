"""Host impact governor: budgets, the three-stage response, and the
end-to-end quarantine story.

The acceptance bar: a synthetic runaway query is downgraded → shed →
quarantined within its budget intervals, while co-installed queries'
results stay byte-identical to a run without the runaway; the
quarantine reason surfaces in STATS and in ``WindowCoverage``.
"""

import pytest

from repro.core.agent import ImpactBudget, QueryGovernor, RecordingTransport, ScrubAgent
from repro.core.agent.governor import (
    STAGE_DOWNGRADED,
    STAGE_HEALTHY,
    STAGE_QUARANTINED,
    STAGE_SHEDDING,
)
from repro.core.api import ManualClock, Scrub
from repro.core.events import EventRegistry
from repro.core.query import parse_query, plan_query, validate_query


def host_objects(text, registry, query_id="q1"):
    plan = plan_query(validate_query(parse_query(text), registry), query_id)
    return plan.host_objects


@pytest.fixture
def registry():
    r = EventRegistry()
    r.define("pv", [("url", "string"), ("latency_ms", "double")])
    r.define("flood", [("n", "long")])
    return r


# A budget where only bytes can realistically breach (wall ceiling huge),
# so tests drive the stage machine deterministically via flush volume.
BYTES_BUDGET = ImpactBudget(
    interval_seconds=5.0,
    max_wall_seconds=60.0,
    max_bytes=512,
    downgrade_factor=0.5,
    min_rate_factor=0.6,
    shed_intervals=1,
)


class TestStageMachine:
    def test_escalates_downgrade_shed_quarantine(self):
        gov = QueryGovernor(BYTES_BUDGET, "q1", started_at=0.0)
        assert gov.stage == STAGE_HEALTHY

        gov.charge(0.0, 10_000)
        assert gov.roll(5.0) is None
        assert gov.stage == STAGE_DOWNGRADED
        assert gov.rate_factor == 0.5

        gov.charge(0.0, 10_000)
        assert gov.roll(10.0) is None
        # 0.5 * 0.5 = 0.25 < min_rate_factor 0.6: downgrading gives way.
        assert gov.stage == STAGE_SHEDDING
        assert gov.shedding

        gov.charge(0.0, 10_000)
        reason = gov.roll(15.0)
        assert gov.stage == STAGE_QUARANTINED
        assert reason is not None and reason.startswith("impact-budget-exceeded:")
        assert "stage=shedding" in reason and "bytes=10000/512" in reason
        # The transition reports exactly once.
        gov.charge(0.0, 10_000)
        assert gov.roll(20.0) is None

    def test_clean_intervals_walk_back_down(self):
        gov = QueryGovernor(BYTES_BUDGET, "q1", started_at=0.0)
        gov.charge(0.0, 10_000)
        gov.roll(5.0)
        gov.charge(0.0, 10_000)
        gov.roll(10.0)
        assert gov.stage == STAGE_SHEDDING

        assert gov.roll(15.0) is None  # clean interval
        assert gov.stage == STAGE_DOWNGRADED
        assert gov.rate_factor == pytest.approx(0.6)  # restored to the floor
        assert gov.roll(20.0) is None
        assert gov.roll(25.0) is None
        assert gov.stage == STAGE_HEALTHY
        assert gov.rate_factor == 1.0

    def test_buffer_drop_is_a_breach(self):
        gov = QueryGovernor(BYTES_BUDGET, "q1", started_at=0.0)
        gov.note_drop()
        gov.roll(5.0)
        assert gov.stage == STAGE_DOWNGRADED

    def test_wall_budget_is_a_breach(self):
        budget = ImpactBudget(interval_seconds=1.0, max_wall_seconds=0.001)
        gov = QueryGovernor(budget, "q1", started_at=0.0)
        gov.charge(0.5)
        gov.roll(1.0)
        assert gov.stage == STAGE_DOWNGRADED

    def test_short_interval_does_not_roll(self):
        gov = QueryGovernor(BYTES_BUDGET, "q1", started_at=0.0)
        gov.charge(0.0, 10_000)
        assert gov.roll(1.0) is None
        assert gov.stage == STAGE_HEALTHY  # interval not yet elapsed

    def test_thinning_is_deterministic_and_roughly_proportional(self):
        gov = QueryGovernor(BYTES_BUDGET, "q1", started_at=0.0)
        assert all(gov.keep(rid) for rid in range(100))  # healthy: keep all
        gov.charge(0.0, 10_000)
        gov.roll(5.0)
        kept = [rid for rid in range(2000) if gov.keep(rid)]
        assert kept == [rid for rid in range(2000) if gov.keep(rid)]
        assert 800 <= len(kept) <= 1200  # ~0.5 of 2000

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            ImpactBudget(interval_seconds=0)
        with pytest.raises(ValueError):
            ImpactBudget(downgrade_factor=1.5)
        with pytest.raises(ValueError):
            ImpactBudget(shed_intervals=0)


class TestAgentGovernor:
    def _agent(self, registry, clock):
        transport = RecordingTransport()
        agent = ScrubAgent(
            "h1", registry, transport, clock=clock,
            flush_batch_size=100_000, impact_budget=BYTES_BUDGET,
        )
        return agent, transport

    def _drive_to_stage(self, registry, stage):
        """Flood the runaway query, flushing every budget interval, until
        its governor reaches *stage*; returns (agent, transport, clock)."""
        clock = ManualClock(start=1.0)
        agent, transport = self._agent(registry, clock)
        (obj,) = host_objects("select flood.n from flood window 60s;", registry)
        agent.install(obj)
        for _step in range(10):
            for i in range(40):
                agent.log("flood", n=i, request_id=i)
            agent.flush()
            clock.advance(BYTES_BUDGET.interval_seconds)
            agent.log("flood", n=0, request_id=0)  # roll happens in log too
            state = agent.governor_state().get("q1") or {"stage": STAGE_QUARANTINED}
            if state["stage"] == stage or "q1" in agent.quarantined:
                break
        return agent, transport, clock

    def test_shedding_counts_ride_batches(self, registry):
        agent, transport, clock = self._drive_to_stage(registry, STAGE_SHEDDING)
        assert agent.governor_state()["q1"]["stage"] == STAGE_SHEDDING
        before = sum(b.shed for b in transport.batches)
        for i in range(25):
            agent.log("flood", n=i, request_id=100 + i)
        stats = agent.query_stats("q1")
        assert stats.shed == agent.stats.events_shed > 0
        agent.flush()
        shed_on_wire = sum(b.shed for b in transport.batches) - before
        assert shed_on_wire == stats.shed
        # Every matched event is shipped, dropped, shed, or was thinned by
        # the downgrade stage on the way here (thinning is plain sampling,
        # so it reduces shipped without its own counter).
        assert stats.seen >= stats.shipped + stats.dropped + stats.shed
        # While shedding, nothing ships: the last 25 events all shed.
        assert stats.shed >= 25

    def test_runaway_is_quarantined_with_structured_reason(self, registry):
        agent, transport, clock = self._drive_to_stage(registry, STAGE_QUARANTINED)
        assert "q1" in agent.quarantined
        reason = agent.quarantined["q1"]
        assert reason.startswith("impact-budget-exceeded:")
        assert agent.stats.queries_quarantined == 1
        # The query is gone from the agent: further events take the fast path.
        agent.flush()
        assert "q1" not in agent.active_query_ids
        # The reason rode exactly one batch.
        notices = [b for b in transport.batches if b.quarantined]
        assert len(notices) == 1
        assert notices[0].quarantined == reason

    def test_healthy_query_unaffected_by_governor(self, registry):
        """With a governor installed but never breached, accounting and
        shipped events are identical to an ungoverned agent."""
        def run(budget):
            clock = ManualClock(start=1.0)
            transport = RecordingTransport()
            agent = ScrubAgent(
                "h1", registry, transport, clock=clock,
                flush_batch_size=100_000, impact_budget=budget,
            )
            (obj,) = host_objects(
                "select pv.url, pv.latency_ms from pv window 60s;", registry
            )
            agent.install(obj)
            for i in range(50):
                agent.log("pv", url=f"/{i % 5}", latency_ms=i * 0.25,
                          request_id=i)
            agent.flush()
            return [
                (b.host, b.query_id, b.dropped, b.shed, b.quarantined,
                 [e.payload for e in b.events])
                for b in transport.batches
            ]

        generous = ImpactBudget(interval_seconds=1.0, max_wall_seconds=60.0,
                                max_bytes=1 << 30)
        assert run(generous) == run(None)


def _co_signature(results):
    return results.to_json()


def _run_scenario(include_runaway: bool):
    """One in-process deployment: a healthy COUNT query, optionally a
    runaway alongside; returns (co-query results, scrub stats surface)."""
    clock = ManualClock(start=1.0)
    # 1024 bytes/interval sits between the co-query's ~715-byte flushes
    # (healthy forever) and the runaway's ~4 KB ones (breaches even after
    # one 0.5 downgrade, so it must walk the whole staircase).
    budget = ImpactBudget(
        interval_seconds=5.0, max_wall_seconds=60.0, max_bytes=1024,
        downgrade_factor=0.5, min_rate_factor=0.6, shed_intervals=1,
    )
    with Scrub(clock=clock, grace_seconds=1.0, impact_budget=budget) as scrub:
        scrub.define_event("pv", [("url", "string"), ("latency_ms", "double")])
        scrub.define_event("flood", [("n", "long")])
        host = scrub.add_host("h1")
        co = scrub.submit("select COUNT(*) from pv window 30s;")
        runaway = None
        if include_runaway:
            runaway = scrub.submit("select flood.n from flood window 30s;")
        for step in range(8):
            now = clock.now
            for i in range(20):
                host.log("pv", url="/a", latency_ms=i * 0.25,
                         request_id=step * 100 + i)
            if include_runaway:
                for i in range(80):
                    host.log("flood", n=i, request_id=step * 100 + i)
            host.flush()
            scrub.central.advance(now)
            clock.advance(5.0)
        engine_stats = scrub.central.stats
        quarantines = dict(scrub.central.quarantines())
        runaway_results = (
            scrub.finish(runaway.query_id) if runaway is not None else None
        )
        co_results = scrub.finish(co.query_id)
        agent_quarantined = dict(host.quarantined)
    return co_results, runaway_results, engine_stats, quarantines, agent_quarantined


@pytest.mark.integration
def test_runaway_quarantine_end_to_end_and_co_query_byte_identical():
    co_with, runaway_results, stats, quarantines, agent_q = _run_scenario(True)
    co_without, _, _, _, _ = _run_scenario(False)

    # The runaway was quarantined on the host, with the reason recorded.
    assert any(q.startswith("impact-budget-exceeded:") for q in agent_q.values())
    # ... reported to ScrubCentral (the STATS surfaces).
    assert stats.quarantines_reported == 1
    assert stats.events_shed > 0
    (hosts,) = [quarantines[q] for q in quarantines]
    assert hosts["h1"].startswith("impact-budget-exceeded:")

    # ... and named in the runaway's WindowCoverage.
    covs = [w.coverage for w in runaway_results.windows if w.coverage]
    assert covs, "quarantine must surface in coverage"
    assert any(c.quarantined.get("h1", "").startswith("impact-budget") for c in covs)
    shed_named = [c for c in covs if c.shed.get("h1", 0) > 0]
    assert shed_named, "shed counts must be named per host in coverage"
    assert runaway_results.total_host_shed == sum(
        c.shed.get("h1", 0) for c in covs
    )
    assert runaway_results.coverage_summary()["hosts_quarantined"]["h1"].startswith(
        "impact-budget-exceeded:"
    )

    # Co-installed query: byte-identical to the run without the runaway.
    assert _co_signature(co_with) == _co_signature(co_without)


def test_quarantined_host_marked_missing_in_targeted_coverage(registry):
    """A targeted host whose governor quarantined the query is reported as
    ``missing: quarantined`` in later windows, not as silent/disconnected."""
    from repro.core.agent.transport import EventBatch
    from repro.core.central.engine import CentralEngine
    from repro.core.events import Event

    plan = plan_query(
        validate_query(parse_query("select COUNT(*) from pv window 10s;"), registry),
        "q1",
    )
    engine = CentralEngine(grace_seconds=0.0)
    engine.register(
        plan.central_object, planned_hosts=2, targeted_hosts=2,
        targeted_names=("h1", "h2"),
    )
    # Window 0: both hosts report; h1's batch carries its quarantine notice.
    engine.ingest(EventBatch(
        host="h1", query_id="q1",
        events=[Event("pv", {"url": "/a"}, 1, 1.0, "h1")],
        quarantined="impact-budget-exceeded: test",
    ))
    engine.ingest(EventBatch(
        host="h2", query_id="q1",
        events=[Event("pv", {"url": "/b"}, 2, 1.0, "h2")],
    ))
    # Window 1: only h2 can still report — h1 uninstalled the query.
    engine.ingest(EventBatch(
        host="h2", query_id="q1",
        events=[Event("pv", {"url": "/b"}, 3, 11.0, "h2")],
    ))
    results = engine.finish("q1")
    w0, w1 = results.windows
    assert w0.coverage.missing == {}
    assert w1.coverage.missing == {"h1": "quarantined"}
    assert w1.coverage.quarantined["h1"].startswith("impact-budget")
    assert w1.coverage.degraded


def test_scrubd_stats_surface_quarantines_and_pool_health():
    """The daemon's STATS reply names host quarantines and pool health."""
    from repro.core.agent.transport import EventBatch
    from repro.live.server import ScrubDaemon

    daemon = ScrubDaemon(port=0, shards=2, workers=2)
    try:
        registry = EventRegistry()
        registry.define("pv", [("url", "string")])
        plan = plan_query(
            validate_query(parse_query("select COUNT(*) from pv window 60s;"),
                           registry),
            "q1",
        )
        daemon.engine.register(plan.central_object)
        daemon.engine.ingest(
            EventBatch(
                host="h1", query_id="q1", events=[],
                shed=7, quarantined="impact-budget-exceeded: test",
            )
        )
        stats = daemon._stats()
        assert stats["engine"]["events_shed"] == 7
        assert stats["engine"]["quarantines_reported"] == 1
        assert stats["quarantines"]["q1"]["h1"].startswith("impact-budget")
        assert stats["pool"]["workers"] == 2
        assert stats["pool"]["alive"] == 2
        assert stats["pool"]["respawns"] == 0
    finally:
        daemon.engine.close()
