"""Tests for semantic validation."""

import pytest

from repro.core.events import EventRegistry
from repro.core.query import (
    FieldRef,
    ScrubValidationError,
    parse_query,
    validate_query,
)


@pytest.fixture
def registry():
    r = EventRegistry()
    r.define("bid", [
        ("exchange_id", "long"), ("city", "string"), ("country", "string"),
        ("bid_price", "double"), ("campaign_id", "long"), ("user_id", "long"),
        ("meta", "object"),
    ])
    r.define("exclusion", [
        ("line_item_id", "long"), ("reason", "string"), ("exchange_id", "long"),
    ])
    r.define("impression", [("cost", "double"), ("line_item_id", "long")])
    return r


def validate(text, registry):
    return validate_query(parse_query(text), registry)


class TestSourceResolution:
    def test_unknown_event_type(self, registry):
        with pytest.raises(ScrubValidationError, match="unknown event type"):
            validate("select COUNT(*) from nope;", registry)

    def test_duplicate_source(self, registry):
        with pytest.raises(ScrubValidationError, match="duplicate"):
            validate("select COUNT(*) from bid, bid;", registry)


class TestFieldResolution:
    def test_qualified_field(self, registry):
        v = validate("select bid.city, COUNT(*) from bid group by bid.city;", registry)
        assert v.query.select_items[0].expr == FieldRef("bid", "city")

    def test_unqualified_field_unique_source(self, registry):
        v = validate("select city, COUNT(*) from bid group by city;", registry)
        assert v.query.select_items[0].expr == FieldRef("bid", "city")

    def test_unqualified_field_resolves_across_join(self, registry):
        v = validate(
            "select reason, COUNT(*) from bid, exclusion group by reason;", registry
        )
        assert v.query.group_by[0] == FieldRef("exclusion", "reason")

    def test_ambiguous_unqualified_field(self, registry):
        with pytest.raises(ScrubValidationError, match="ambiguous"):
            validate(
                "select exchange_id, COUNT(*) from bid, exclusion "
                "group by exchange_id;",
                registry,
            )

    def test_unknown_field(self, registry):
        with pytest.raises(ScrubValidationError, match="no field"):
            validate("select bid.nope, COUNT(*) from bid group by bid.nope;", registry)

    def test_unknown_bare_field(self, registry):
        with pytest.raises(ScrubValidationError, match="no source event type"):
            validate("select COUNT(*) from bid where nope = 1;", registry)

    def test_system_fields_resolve(self, registry):
        validate("select COUNT(*) from bid where request_id > 0;", registry)
        validate("select COUNT(*) from bid where bid.timestamp > 0;", registry)

    def test_dotted_object_path(self, registry):
        v = validate("select COUNT(*) from bid where bid.meta.os = 'linux';", registry)
        assert v is not None

    def test_dotted_path_without_qualifier(self, registry):
        # 'meta.os' parses as FieldRef('meta', 'os'); 'meta' is not an event
        # type, so it re-resolves as a path on bid.
        v = validate("select COUNT(*) from bid where meta.os = 'x';", registry)
        assert v is not None


class TestAggregateRules:
    def test_aggregate_in_where_rejected(self, registry):
        with pytest.raises(ScrubValidationError, match="not allowed in WHERE"):
            validate("select COUNT(*) from bid where COUNT(*) > 5;", registry)

    def test_aggregate_in_group_by_rejected(self, registry):
        with pytest.raises(ScrubValidationError, match="not allowed in GROUP BY"):
            validate("select COUNT(*) from bid group by SUM(bid_price);", registry)

    def test_bare_column_with_aggregate_rejected(self, registry):
        with pytest.raises(ScrubValidationError, match="GROUP BY"):
            validate("select bid.city, COUNT(*) from bid;", registry)

    def test_grouped_column_in_select_ok(self, registry):
        validate(
            "select bid.city, COUNT(*) from bid group by bid.city;", registry
        )

    def test_arithmetic_over_aggregate_ok(self, registry):
        validate("select 1000 * AVG(impression.cost) from impression;", registry)

    def test_arithmetic_over_group_key_ok(self, registry):
        validate(
            "select bid.exchange_id + 1, COUNT(*) from bid "
            "group by bid.exchange_id + 1;",
            registry,
        )

    def test_plain_selection_without_aggregates_ok(self, registry):
        validate("select bid.city, bid.bid_price from bid;", registry)


class TestTypeChecking:
    def test_arithmetic_on_string_rejected(self, registry):
        with pytest.raises(ScrubValidationError, match="numeric"):
            validate("select COUNT(*) from bid where bid.city + 1 > 2;", registry)

    def test_compare_string_to_number_rejected(self, registry):
        with pytest.raises(ScrubValidationError, match="cannot compare"):
            validate("select COUNT(*) from bid where bid.city = 5;", registry)

    def test_like_on_number_rejected(self, registry):
        with pytest.raises(ScrubValidationError, match="LIKE"):
            validate("select COUNT(*) from bid where bid.bid_price like 'x%';", registry)

    def test_sum_of_string_rejected(self, registry):
        with pytest.raises(ScrubValidationError, match="SUM"):
            validate("select SUM(bid.city) from bid;", registry)

    def test_object_member_dynamically_typed(self, registry):
        # meta.os has no static type, so any comparison passes validation.
        validate("select COUNT(*) from bid where bid.meta.os = 5;", registry)

    def test_numeric_cross_type_compare_ok(self, registry):
        validate("select COUNT(*) from bid where bid.exchange_id < 2.5;", registry)


class TestColumnNames:
    def test_alias_wins(self, registry):
        v = validate("select COUNT(*) as total from bid;", registry)
        assert v.column_names == ("total",)

    def test_default_is_unparsed_expr(self, registry):
        v = validate("select COUNT(*), AVG(bid.bid_price) from bid;", registry)
        assert v.column_names == ("COUNT(*)", "AVG(bid.bid_price)")
