#!/usr/bin/env python3
"""Case study 8.2 + Eqs. 1-3: sampled monitoring of a new ad exchange.

A new exchange ("D") is integrated and activates mid-trace.  Following
paper Fig. 11, the validation query counts impressions per exchange
while sampling 10% of the PresentationServers (wait — at this simulated
scale we sample 50% of 10 servers) and 50% of events: only statistical,
not exact, information is required.  The output is the Fig. 12
time series plus — for a global-count variant — the multi-stage
sampling estimate with its 95% error bound (paper Eqs. 1-3).

Run:  python examples/sampled_monitoring.py
"""

from repro.adplatform import new_exchange_scenario
from repro.cluster import run_to_completion

TRACE = 120.0
ACTIVATION = 60.0


def main() -> None:
    scenario = new_exchange_scenario(
        users=400, pageview_rate=15.0, activation_time=ACTIVATION,
        presentationservers=10,
    )
    scenario.start(until=TRACE)
    new_ex = scenario.extras["new_exchange"]
    names = {e.exchange_id: e.name for e in scenario.extras["exchanges"]}
    print(f"exchange {new_ex.name} activates at t={ACTIVATION:g}s; "
          f"monitoring with 50% host + 50% event sampling\n")

    # Paper Fig. 11: impressions per exchange, two-level sampling.
    per_exchange = scenario.cluster.submit(
        f"Select impression.exchange_id, COUNT(*) from impression "
        f"@[Service in PresentationServers] "
        f"sample hosts 50% sample events 50% "
        f"window 10s duration {int(TRACE)}s "
        f"group by impression.exchange_id;"
    )
    # A global sampled count, to show the Eqs. 1-3 error bounds.
    global_count = scenario.cluster.submit(
        f"Select COUNT(*) from impression "
        f"@[Service in PresentationServers] "
        f"sample hosts 50% sample events 50% "
        f"window 10s duration {int(TRACE)}s;"
    )
    print(f"targeted {len(per_exchange.targeted_hosts)} of "
          f"{len(per_exchange.planned_hosts)} PresentationServers")

    results = run_to_completion(scenario.cluster, per_exchange)
    estimates = scenario.cluster.server.finish(global_count.query_id)

    # Fig. 12 as a table: impressions per exchange per window (scaled up
    # from the sample by the Horvitz-Thompson factor).
    exchange_ids = sorted(names)
    print("\nFig. 12 (reproduced): estimated impressions per 10s window")
    header = "  t(s)  " + "".join(f"{names[x]:>8s}" for x in exchange_ids)
    print(header + "   (D activates at t=%g)" % ACTIVATION)
    for window in results.windows:
        counts = {row[0]: row[1] for row in window.rows}
        marker = "  <-- D live" if window.window_start >= ACTIVATION else ""
        print(f"  {window.window_start:5.0f} " + "".join(
            f"{counts.get(x, 0):>8.0f}" for x in exchange_ids) + marker)

    print("\nglobal impression count per window with Eqs. 1-3 error bounds:")
    for window in estimates.windows:
        est = window.estimates.get("COUNT(*)")
        if est is not None:
            print(f"  [{window.window_start:5.0f}, {window.window_end:5.0f}) "
                  f" {est}  (rel. err {est.relative_error * 100:.1f}%)")

    before = sum(
        row[1] for w in results.windows if w.window_end <= ACTIVATION
        for row in w.rows if row[0] == new_ex.exchange_id
    )
    after = sum(
        row[1] for w in results.windows if w.window_start >= ACTIVATION
        for row in w.rows if row[0] == new_ex.exchange_id
    )
    print(f"\nexchange {new_ex.name}: {before:.0f} impressions before "
          f"activation, {after:.0f} after -> "
          + ("healthy integration." if before == 0 and after > 0
             else "check the integration!"))


if __name__ == "__main__":
    main()
