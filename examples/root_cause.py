#!/usr/bin/env python3
"""Automated root-cause analysis over the Scrub query language.

Injects each seeded fault from the RCA library into a simulated ad
platform — a campaign misconfigured into a dead geo, a bot surge, an
exchange whose link latency degrades 6x — then lets
`repro.rca.RootCauseDriver` troubleshoot it the way the paper's on-call
engineer would: confirm the symptom with a sliding-window query,
localize the change point, GROUP BY each candidate dimension, contrast
the good phase against the bad one, and rank the explanations.

Exits non-zero if any fault's injected true cause is missing from the
report's top 3 — this doubles as the CI smoke test for the RCA stack.

Run:  python examples/root_cause.py [--fault-time 60] [--trace 120]
"""

import argparse
import sys

from repro.adplatform.workload import RCA_SCENARIOS
from repro.rca import RootCauseDriver, ScenarioRunner, symptom_from_extras


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fault-time", type=float, default=60.0,
                        help="virtual second at which each fault fires")
    parser.add_argument("--trace", type=float, default=120.0,
                        help="trace length in virtual seconds")
    parser.add_argument("--drill-down", action="store_true",
                        help="also run the itemset drill-down round")
    args = parser.parse_args()

    failures = 0
    for name, builder in RCA_SCENARIOS.items():
        extras = builder(fault_time=args.fault_time).extras
        symptom = symptom_from_extras(extras, name=name)
        print(f"=== {name} ===")
        print(f"injected at t={args.fault_time:g}s; "
              f"symptom to explain: {symptom.describe()}")

        runner = ScenarioRunner(
            lambda: builder(fault_time=args.fault_time),
            trace_seconds=args.trace,
        )
        driver = RootCauseDriver(
            runner, symptom, trace_seconds=args.trace,
            drill_down=args.drill_down,
        )
        report = driver.diagnose()
        print(report.render())

        rank = report.best_rank(extras["truth"])
        truth = ", ".join(f"{d}={v!r}" for d, v in extras["truth"][:3])
        if rank is not None and rank <= 3:
            print(f"ground truth ({truth}) ranked #{rank} -- OK\n")
        else:
            print(f"ground truth ({truth}) NOT in top 3 (rank={rank}) -- FAIL\n")
            failures += 1

    if failures:
        print(f"{failures} fault(s) escaped the driver")
        return 1
    print("every injected fault was root-caused from its symptom alone.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
