#!/usr/bin/env python3
"""Case study 8.5: diagnosing line-item cannibalization (paper Figs. 18-19).

An advertiser reports that line item λ serves no ads despite budget and
relaxed targeting.  The troubleshooter runs the paper's Fig. 19-style
query over auction events: per winning line item, the number of wins
and the average winning bid price, in auctions where λ participated.
The output shows every winner pricing above λ's entire advisory band —
the diagnosis — and the script then applies the paper's remediation
(bumping λ's advisory price) and shows λ delivering.

Run:  python examples/cannibalization.py
"""

from repro.adplatform import cannibalization_scenario
from repro.adplatform.auction import PRICE_BAND
from repro.cluster import run_to_completion

PHASE = 60.0  # seconds per phase


def run_win_report(scenario, lam, label):
    cluster = scenario.cluster
    handle = cluster.submit(
        f"Select auction.winner_line_item_id, COUNT(*), "
        f"AVG(auction.winner_price) from auction "
        f"@[Service in AdServers] "
        f"window {int(PHASE)}s duration {int(PHASE)}s "
        f"group by auction.winner_line_item_id;"
    )
    results = run_to_completion(cluster, handle)
    wins = {}
    for window in results.windows:
        for row in window.rows:
            li, count, avg_price = row[0], row[1], row[2]
            prev_count, _ = wins.get(li, (0, 0.0))
            wins[li] = (prev_count + count, avg_price)

    print(f"\n{label}: auction wins (Fig. 18a) and avg winning price (18b)")
    print(f"  {'line item':>10s} {'wins':>6s} {'avg price':>10s}")
    for li, (count, price) in sorted(wins.items(), key=lambda kv: -kv[1][0]):
        marker = "  <-- λ" if li == lam.line_item_id else ""
        print(f"  {li:>10d} {count:>6d} {price:>10.2f}{marker}")
    return wins


def main() -> None:
    scenario = cannibalization_scenario(users=300, pageview_rate=12.0)
    lam = scenario.extras["lam"]
    rivals = scenario.extras["rivals"]
    print(f"λ = line item {lam.line_item_id}, advisory ${lam.advisory_price:.2f} "
          f"(band up to ${lam.advisory_price * (1 + PRICE_BAND):.2f})")
    print("rivals with near-identical targeting: " + ", ".join(
        f"{r.line_item_id} @ ${r.advisory_price:.2f}" for r in rivals))

    scenario.start(until=PHASE)
    wins = run_win_report(scenario, lam, "phase 1 (before the fix)")

    lam_ceiling = lam.advisory_price * (1 + PRICE_BAND)
    if lam.line_item_id not in wins:
        floor = min(price for _count, price in wins.values())
        print(f"\ndiagnosis: λ never wins; every winner averages "
              f"${floor:.2f}+, above λ's band ceiling ${lam_ceiling:.2f}.")
        print("λ is being cannibalized by higher-advisory line items.")

    # The paper's remediation: bump λ's advisory bid price.
    lam.advisory_price = max(r.advisory_price for r in rivals) + 1.0
    print(f"\nremediation: bumping λ's advisory price to "
          f"${lam.advisory_price:.2f} and re-checking...")

    # Restart traffic for phase 2 on the same platform.
    from repro.adplatform.exchangesim import ExchangeTraffic

    traffic2 = ExchangeTraffic(
        loop=scenario.cluster.loop,
        users=scenario.traffic.users,
        exchanges=scenario.traffic.exchanges,
        publishers=scenario.traffic.publishers,
        sink=scenario.platform.handle_bid_request,
        pageviews_per_second=scenario.traffic.rate,
        request_ids=scenario.platform.request_ids,
        seed=99,
    )
    traffic2.start(until=scenario.cluster.now + PHASE)
    wins2 = run_win_report(scenario, lam, "phase 2 (after the fix)")

    assert lam.line_item_id in wins2, "λ should win after the price bump"
    print(f"\nλ now wins {wins2[lam.line_item_id][0]} auctions — "
          f"'immediately it started delivering ads' (paper 8.5).")


if __name__ == "__main__":
    main()
