#!/usr/bin/env python3
"""E18: the accuracy-vs-overhead frontier of closed-loop sampling.

A ``TARGET CI x%`` query hands the accuracy/overhead trade-off to the
controller: it starts at full rates, watches the Eqs. 1-3 dispersion
telemetry, and relaxes the event rate to the cheapest point whose
predicted error still meets the target.  Sweeping the target traces
the frontier — looser targets buy cheaper queries, and the *measured*
error stays inside the asked-for bound at every point.

Traffic is a deterministic heavy-tailed bid stream (1 in 20 bids is a
20x whale), the regime where sampling genuinely hurts and the
controller has a real decision to make.

Run:  python examples/closed_loop_sampling.py
"""

from repro.cluster import SimCluster, run_to_completion
from repro.core.events import EventRegistry

HOSTS = 8
DURATION = 120.0
TARGETS = [None, 0.20, 0.10, 0.05, 0.02]  # None = exhaustive baseline


def make_registry() -> EventRegistry:
    registry = EventRegistry()
    registry.define(
        "bid", [("exchange_id", "long"), ("bid_price", "double")]
    )
    return registry


def bid_traffic(cluster, hosts, per_tick=30, tick=0.1):
    counter = [0]

    def emit():
        for host in hosts:
            for _ in range(per_tick):
                rid = counter[0]
                counter[0] += 1
                host.charge_app(0.002)
                host.agent.log(
                    "bid",
                    exchange_id=1,
                    bid_price=20.0 if rid % 20 == 0 else 1.0,
                    request_id=rid,
                )

    cluster.loop.call_every(tick, emit)


def run_one(target):
    clause = "" if target is None else f"target ci {target * 100:g}% "
    query = (
        f"select SUM(bid_price) from bid @[Service in BidServers] "
        f"window 5s duration {int(DURATION)}s {clause};"
    )
    with SimCluster(make_registry(), flush_interval=0.5) as cluster:
        hosts = cluster.add_service("BidServers", "dc1", HOSTS)
        bid_traffic(cluster, hosts)
        handle = cluster.submit(query)
        results = run_to_completion(cluster, handle)
        shipped = sum(h.agent.stats.events_shipped for h in hosts)
        bytes_shipped = cluster.scrub_bytes_shipped()

    # Ground truth per window is reconstructible from the deterministic
    # trace, but the exhaustive run *is* the truth: compare against it.
    totals = {}
    for window in results.windows:
        if window.rows:
            totals[window.window_start] = float(window.rows[0][0])
    return {
        "target": target,
        "sampling": results.sampling,
        "totals": totals,
        "events_shipped": shipped,
        "bytes_shipped": bytes_shipped,
    }


def main() -> None:
    runs = [run_one(t) for t in TARGETS]
    truth = runs[0]["totals"]
    base_bytes = runs[0]["bytes_shipped"]

    print(
        f"{'target':>8} {'conv rate':>10} {'predicted':>10} "
        f"{'worst meas':>11} {'bytes vs full':>14} {'state':>13}"
    )
    for run in runs:
        target = run["target"]
        sampling = run["sampling"]
        worst = max(
            abs(est - truth[start]) / truth[start]
            for start, est in run["totals"].items()
            if start in truth and start >= 60.0
        )
        frac = run["bytes_shipped"] / base_bytes
        if target is None:
            print(
                f"{'(exact)':>8} {'1.000':>10} {'-':>10} {worst:>11.4f} "
                f"{frac:>13.1%} {'open-loop':>13}"
            )
            continue
        print(
            f"{target:>8.0%} {sampling['event_rate']:>10.4f} "
            f"{sampling['predicted_relative_error']:>10.4f} {worst:>11.4f} "
            f"{frac:>13.1%} {sampling['state']:>13}"
        )
        assert worst <= target, (
            f"measured error {worst:.4f} breached the {target:.0%} target"
        )
    print(
        "\nevery measured error sits inside its asked-for bound; cost "
        "falls monotonically as the target loosens."
    )


if __name__ == "__main__":
    main()
