#!/usr/bin/env python3
"""Scrub vs the logging baseline (paper Sections 1, 8.1).

Runs the same troubleshooting question — "how many bid requests per
user?" — two ways on identical workloads:

* **log everything**: every event on every host is shipped to a central
  log store; the answer comes from an offline batch job over the logs;
* **Scrub**: the query is installed online; hosts ship only the
  projected events the query needs; the answer arrives per window.

Prints the paper's comparison: bytes shipped off the hosts, storage,
and time-to-first-answer.

Run:  python examples/scrub_vs_logging.py
"""

from repro.adplatform import spam_scenario
from repro.baselines import BatchQueryEngine, LoggingBaseline
from repro.cluster import run_to_completion

TRACE = 60.0
QUERY = (
    "Select bid.user_id, COUNT(*) from bid "
    "window 10s duration {dur}s group by bid.user_id;"
)


def main() -> None:
    # -- regime 1: log everything, analyse offline ---------------------------
    sc1 = spam_scenario(users=300, pageview_rate=10.0)
    baseline = LoggingBaseline(sc1.cluster)
    baseline.install()
    sc1.start(until=TRACE)
    sc1.cluster.run_until(TRACE + 3.0)

    batch = BatchQueryEngine(sc1.cluster.registry)
    report = batch.run(QUERY.format(dur=int(TRACE)), baseline.store)
    logging_bytes = sc1.cluster.scrub_bytes_shipped()

    # -- regime 2: Scrub, online ------------------------------------------------
    sc2 = spam_scenario(users=300, pageview_rate=10.0)
    sc2.start(until=TRACE)
    first_window_at = []
    sc2.cluster.on_window(
        lambda w: first_window_at.append(sc2.cluster.now)
        if not first_window_at else None
    )
    handle = sc2.cluster.submit(QUERY.format(dur=int(TRACE)))
    results = run_to_completion(sc2.cluster, handle)
    scrub_bytes = sc2.cluster.scrub_bytes_shipped()

    # -- the comparison -----------------------------------------------------------
    scrub_rows = sum(len(w.rows) for w in results.windows)
    batch_rows = sum(len(w.rows) for w in report.results.windows)
    print("same question, two regimes "
          f"({TRACE:g}s trace, {report.records_scanned} events generated):\n")
    print(f"  {'':28s} {'log-everything':>16s} {'Scrub':>12s}")
    print(f"  {'bytes shipped off hosts':28s} "
          f"{logging_bytes:>16,} {scrub_bytes:>12,}")
    print(f"  {'central storage (JSON)':28s} "
          f"{baseline.store.stats.json_bytes:>16,} {'0':>12s}")
    print(f"  {'records scanned to answer':28s} "
          f"{report.records_scanned:>16,} {'-':>12s}")
    print(f"  {'time to first answer (s)':28s} "
          f"{report.estimated_runtime_seconds + TRACE:>16.1f} "
          f"{first_window_at[0] if first_window_at else float('nan'):>12.1f}")
    print(f"  {'answer rows':28s} {batch_rows:>16,} {scrub_rows:>12,}")

    ratio = logging_bytes / max(scrub_bytes, 1)
    print(f"\nlogging shipped {ratio:.1f}x the bytes, answered after the whole "
          f"trace plus a ~{report.estimated_runtime_seconds:.0f}s batch job; "
          f"Scrub's first window arrived "
          f"{first_window_at[0] if first_window_at else 0:.0f}s into the trace.")
    print("'Offline analysis of logs is not an option in this environment' "
          "(paper Section 11).")


if __name__ == "__main__":
    main()
