#!/usr/bin/env python3
"""Case study 8.4: line item exclusions (paper Fig. 16).

A campaign owner asks why their line items rarely bid on a particular
exchange.  The troubleshooter runs the paper's cross-service join —
``bid`` events from the BidServers equi-joined with ``exclusion``
events from the AdServers on the request id — and breaks the exclusions
down two ways: per reason (why do line items drop out?) and per line
item for one publisher (the Fig. 16 distribution whose anomalies are
compared against well-behaved line items).

This is the query that would be impossible to ask cheaply with logging
(every bid request produces an exclusion per filtered line item) or
with baggage propagation (the exclusions would have to ride on every
response).  Scrub collects them only while the query runs.

Run:  python examples/exclusion_analysis.py
"""

from repro.adplatform import exclusion_scenario
from repro.cluster import run_to_completion

TRACE = 60.0


def main() -> None:
    scenario = exclusion_scenario(users=300, pageview_rate=10.0, line_items=120)
    scenario.start(until=TRACE)
    exchange = scenario.extras["exchanges"][0]
    cluster = scenario.cluster
    print(f"{len(scenario.extras['line_items'])} active line items; "
          f"analysing exchange {exchange.name} "
          f"(id {exchange.exchange_id})\n")

    by_reason = cluster.submit(
        f"Select exclusion.reason, COUNT(*) from bid, exclusion "
        f"where bid.exchange_id = {exchange.exchange_id} "
        f"@[Service in (BidServers, AdServers)] "
        f"window {int(TRACE)}s duration {int(TRACE)}s "
        f"group by exclusion.reason;"
    )
    by_line_item = cluster.submit(
        f"Select exclusion.line_item_id, COUNT(*) from bid, exclusion "
        f"where bid.exchange_id = {exchange.exchange_id} "
        f"and exclusion.publisher_id = 6000001 "
        f"@[Service in (BidServers, AdServers)] "
        f"window {int(TRACE)}s duration {int(TRACE)}s "
        f"group by exclusion.line_item_id;"
    )
    print("queries running over live traffic...")
    results_reason = run_to_completion(cluster, by_reason)
    results_li = cluster.server.finish(by_line_item.query_id)

    reasons = {}
    for window in results_reason.windows:
        for row in window.rows:
            reasons[row[0]] = reasons.get(row[0], 0) + row[1]
    total = sum(reasons.values())
    print(f"\nexclusion reasons on exchange {exchange.name} "
          f"({total:,} exclusions in {TRACE:g}s):")
    for reason, count in sorted(reasons.items(), key=lambda kv: -kv[1]):
        bar = "#" * int(40 * count / max(reasons.values()))
        print(f"  {reason:22s} {count:>7,} {bar}")

    per_li = {}
    for window in results_li.windows:
        for row in window.rows:
            per_li[row[0]] = per_li.get(row[0], 0) + row[1]
    ceiling = max(per_li.values())
    print(f"\nFig. 16 (reproduced): exclusions per line item, one publisher "
          f"(top 12 of {len(per_li)}):")
    for li, count in sorted(per_li.items(), key=lambda kv: -kv[1])[:12]:
        flag = "  <-- excluded on every request" if count == ceiling else ""
        print(f"  line item {li}: {count:>5}{flag}")

    always = [li for li, c in per_li.items() if c == ceiling]
    print(f"\n{len(always)} line item(s) are excluded on *every* bid request "
          f"for this exchange/publisher — the anomaly the troubleshooter "
          f"would investigate (exchange allowlists, in this workload).")


if __name__ == "__main__":
    main()
