#!/usr/bin/env python3
"""Case study 8.1: detecting spam bots (paper Figs. 9-10).

Runs the paper's query — bid requests grouped by user id in 10-second
tumbling windows on the BidServers — against a simulated bidding
platform where two bots hide in human page-view traffic, then renders
an ASCII version of Fig. 10: the distribution of per-user request
counts per window, with the bots standing out at the top.

Run:  python examples/spam_detection.py [--minutes 5]
"""

import argparse
import math
from collections import Counter

from repro.adplatform import spam_scenario
from repro.cluster import run_to_completion


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--minutes", type=float, default=3.0,
                        help="trace length in (virtual) minutes")
    args = parser.parse_args()
    duration = args.minutes * 60.0

    scenario = spam_scenario(
        users=400, pageview_rate=12.0, bot_count=2, bot_batch=60, bot_period=2.0,
    )
    scenario.start(until=duration)
    bots = {b.user_id for b in scenario.extras["bots"]}
    print(f"platform up: {len(scenario.cluster.hosts())} hosts, "
          f"{len(bots)} bots hidden in {len(scenario.extras['humans'])} users")

    # Paper Fig. 9, verbatim shape (one BidServer; here: the whole service).
    handle = scenario.cluster.submit(
        f"Select bid.user_id, COUNT(*) from bid "
        f"@[Service in BidServers] "
        f"window 10s duration {int(duration)}s "
        f"group by bid.user_id;"
    )
    print(f"running {handle.query_id} on {len(handle.targeted_hosts)} host(s) "
          f"for {args.minutes:g} virtual minutes...")
    results = run_to_completion(scenario.cluster, handle)

    # Fig. 10 as ASCII: x = window, y = log2(requests/user/window),
    # cell density = number of users at that level; bots flagged '!'.
    max_level = 0
    grid: dict[tuple[int, int], tuple[int, bool]] = {}
    for wi, window in enumerate(results.windows):
        for row in window.rows:
            user_id, count = row[0], row[1]
            level = int(math.log2(max(count, 1)))
            max_level = max(max_level, level)
            n, has_bot = grid.get((wi, level), (0, False))
            grid[(wi, level)] = (n + 1, has_bot or user_id in bots)

    print("\nFig. 10 (ASCII): log2(bid requests per user per 10s window)")
    print("  density: . < o < O < @   bots marked '!'\n")
    for level in range(max_level, -1, -1):
        cells = []
        for wi in range(len(results.windows)):
            n, has_bot = grid.get((wi, level), (0, False))
            if has_bot:
                cells.append("!")
            elif n == 0:
                cells.append(" ")
            elif n <= 2:
                cells.append(".")
            elif n <= 10:
                cells.append("o")
            elif n <= 50:
                cells.append("O")
            else:
                cells.append("@")
        print(f"  2^{level:<2d} |{''.join(cells)}|")
    print(f"        +{'-' * len(results.windows)}+  ({len(results.windows)} windows)")

    # The troubleshooter's conclusion: which users are the outliers?
    suspects = Counter()
    for window in results.windows:
        for row in window.rows:
            if row[1] >= 30:  # far beyond any human page view
                suspects[row[0]] += 1
    print("\nsuspected bots (>=30 requests in a 10s window):")
    for user_id, hits in suspects.most_common():
        verdict = "CONFIRMED BOT" if user_id in bots else "false positive"
        print(f"  user {user_id}: flagged in {hits} window(s) -> {verdict}")
    assert set(suspects) == bots, "detection should find exactly the bots"
    print("\nblacklisting these users would stop the spam — as in the paper.")


if __name__ == "__main__":
    main()
