#!/usr/bin/env python3
"""Case study 8.3: A/B testing ad targeting models (paper Figs. 13-15).

Model A (baseline) runs on one pod of servers, model B (improved) on
another.  Scrub queries — the paper's Fig. 13/14 templates — compute
each side's CPM (1000 x AVG(impression.cost)) and CTR
(COUNT(clicks)/COUNT(impressions)) by targeting the host list of each
pod.  Expected shape (Fig. 15): B's CTR is clearly higher while CPM
stays roughly equal.

Run:  python examples/ab_testing.py
"""

from repro.adplatform import ab_test_scenario

DURATION = 120.0


def main() -> None:
    scenario = ab_test_scenario(users=600, pageview_rate=25.0)
    scenario.start(until=DURATION)
    focal = scenario.extras["focal_line_item"]
    print(f"A/B test on line item {focal.line_item_id} "
          f"(advisory ${focal.advisory_price:.2f})")

    cluster = scenario.cluster
    handles = {}
    for tag in ("A", "B"):
        hosts = ", ".join(scenario.extras[f"model_{tag.lower()}_hosts"])
        # Paper Fig. 13: CPM of the line item on this model's servers.
        handles[f"cpm_{tag}"] = cluster.submit(
            f"Select 1000*AVG(impression.cost) from impression "
            f"where impression.line_item_id = {focal.line_item_id} "
            f"@[Servers in ({hosts})] "
            f"window {int(DURATION)}s duration {int(DURATION)}s;"
        )
        # Paper Fig. 14: impression and click counts.
        for event in ("impression", "click"):
            handles[f"{event}_{tag}"] = cluster.submit(
                f"Select COUNT(*) from {event} "
                f"where {event}.line_item_id = {focal.line_item_id} "
                f"@[Servers in ({hosts})] "
                f"window {int(DURATION)}s duration {int(DURATION)}s;"
            )

    print(f"submitted {len(handles)} queries; simulating "
          f"{DURATION:g}s of production traffic...")
    cluster.run_until(DURATION + 5.0)

    totals = {}
    for key, handle in handles.items():
        results = cluster.server.finish(handle.query_id)
        values = [v for v in results.column(results.columns[0]) if v is not None]
        totals[key] = sum(values) if values else 0.0

    print("\nFig. 15 (reproduced):")
    print(f"  {'':14s} {'model A':>12s} {'model B':>12s}")
    print(f"  {'impressions':14s} {totals['impression_A']:>12.0f} "
          f"{totals['impression_B']:>12.0f}")
    print(f"  {'clicks':14s} {totals['click_A']:>12.0f} {totals['click_B']:>12.0f}")
    ctr_a = totals["click_A"] / max(totals["impression_A"], 1)
    ctr_b = totals["click_B"] / max(totals["impression_B"], 1)
    print(f"  {'CTR':14s} {ctr_a:>12.4f} {ctr_b:>12.4f}")
    print(f"  {'CPM ($)':14s} {totals['cpm_A']:>12.2f} {totals['cpm_B']:>12.2f}")

    winner = "B" if ctr_b > ctr_a else "A"
    print(f"\nmodel {winner} achieves higher CTR at comparable CPM — "
          f"the desired Fig. 15 outcome." if winner == "B"
          else "\nunexpected: model A won; rerun with a longer duration.")


if __name__ == "__main__":
    main()
