#!/usr/bin/env python3
"""Quickstart: a complete in-process Scrub deployment in ~40 lines.

Declares an event type (paper Fig. 1), stands up two application hosts
with Scrub agents and a central engine, runs the paper's Fig. 9-style
grouped count, and prints per-window results.

Run:  python examples/quickstart.py
"""

from repro import ManualClock, Scrub

# A manual clock keeps the run deterministic; pass nothing to use wall
# time in a live application.
clock = ManualClock()
scrub = Scrub(clock=clock, grace_seconds=0.0)

# 1. Declare the event type the application will emit (paper Fig. 1).
scrub.define_event(
    "bid",
    [
        ("exchange_id", "long"),
        ("city", "string"),
        ("country", "string"),
        ("bid_price", "double"),
        ("campaign_id", "long"),
        ("user_id", "long"),
    ],
    doc="A bid response sent back to an ad exchange.",
)

# 2. Stand up application hosts (each gets an embedded Scrub agent).
host1 = scrub.add_host("host1", services=["BidServers"])
host2 = scrub.add_host("host2", services=["BidServers"])

# 3. Submit a troubleshooting query: bids per user per 10-second window,
#    only on BidServers, for a bounded 60-second span.
handle = scrub.submit(
    """
    Select bid.user_id, COUNT(*)
    from bid
    @[Service in BidServers]
    window 10s duration 60s
    group by bid.user_id;
    """
)
print(f"query {handle.query_id} installed on {list(handle.targeted_hosts)}")

# 4. The application does its work, calling log() at event points.
request_id = 0
for t in range(30):
    clock.set(float(t))
    for host in (host1, host2):
        request_id += 1
        host.log(
            "bid",
            exchange_id=7,
            city="San Jose",
            country="US",
            bid_price=1.25,
            campaign_id=42,
            user_id=request_id % 3,  # three users taking turns
            request_id=request_id,
        )
    scrub.tick()  # periodic flush + window close (your scheduler's job)

# 5. Collect the results.
clock.set(61.0)
results = scrub.finish(handle.query_id)
print(results.pretty())
