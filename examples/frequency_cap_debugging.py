#!/usr/bin/env python3
"""Case study 8.6: debugging the incorrectly-set frequency-cap field.

A customer capped their campaign at one ad per user per day, yet their
analytics show users receiving more.  The platform code that maintains
the per-user counters hasn't changed, so the paper's developers
"suspected that the problem resulted from erroneous input data".

The troubleshooting session below mirrors theirs:

1. confirm the symptom — impressions per user per day for the capped
   line item, some users above the cap;
2. test the hypothesis — query ``profile_update`` events at the
   ProfileStore, split by write source, looking for counter writes with
   implausible values;
3. find the smoking gun — the external profile feed intermittently
   writes frequency 0, silently un-capping users it touches.

Days are accelerated (60 s/day) so several days fit the trace.

Run:  python examples/frequency_cap_debugging.py
"""

from repro.adplatform import frequency_cap_scenario

DAY = 60.0
TRACE = 4 * DAY


def main() -> None:
    scenario = frequency_cap_scenario(
        users=120, pageview_rate=15.0, cap=1, corruption_rate=0.6,
        seconds_per_day=DAY, feed_period=10.0,
    )
    scenario.start(until=TRACE)
    capped = scenario.extras["capped_line_item"]
    cluster = scenario.cluster
    print(f"line item {capped.line_item_id}: frequency cap = "
          f"{capped.frequency_cap} ad/user/day ({DAY:g}s days)\n")

    # Step 1: the symptom.
    per_user = cluster.submit(
        f"Select impression.user_id, COUNT(*) from impression "
        f"where impression.line_item_id = {capped.line_item_id} "
        f"window {int(DAY)}s duration {int(TRACE)}s "
        f"group by impression.user_id;"
    )
    # Step 2: the hypothesis — profile counter writes by source.
    feed_writes = cluster.submit(
        f"Select profile_update.source, COUNT(*), "
        f"MIN(profile_update.frequency_count), "
        f"MAX(profile_update.frequency_count) from profile_update "
        f"where profile_update.line_item_id = {capped.line_item_id} "
        f"window {int(TRACE)}s duration {int(TRACE)}s "
        f"group by profile_update.source;"
    )
    # Step 3: the smoking gun — zero-valued feed writes over time.
    zero_writes = cluster.submit(
        f"Select COUNT(*) from profile_update "
        f"where profile_update.line_item_id = {capped.line_item_id} "
        f"and profile_update.source = 'feed' "
        f"and profile_update.frequency_count = 0 "
        f"window {int(DAY)}s duration {int(TRACE)}s;"
    )
    print("three queries running over live traffic...")
    cluster.run_until(TRACE + 5.0)

    impressions = cluster.server.finish(per_user.query_id)
    writes = cluster.server.finish(feed_writes.query_id)
    zeros = cluster.server.finish(zero_writes.query_id)

    print("\nstep 1 — impressions per user per day (cap = 1):")
    from collections import Counter

    histogram = Counter()
    for window in impressions.windows:
        for row in window.rows:
            histogram[row[1]] += 1
    for count in sorted(histogram):
        marker = "  <-- CAP VIOLATION" if count > 1 else ""
        print(f"  {count} ad(s)/day: {histogram[count]:>4} user-days{marker}")
    violations = sum(v for k, v in histogram.items() if k > 1)
    print(f"  -> {violations} user-days over the cap: symptom confirmed.")

    print("\nstep 2 — profile counter writes by source:")
    for window in writes.windows:
        for row in window.rows:
            source, count, lo, hi = row[0], row[1], row[2], row[3]
            note = "  <-- writes of 0?!" if lo == 0 else ""
            print(f"  {source:12s} writes={count:>5}  "
                  f"value range [{lo}, {hi}]{note}")

    print("\nstep 3 — zero-valued feed writes per day:")
    for window in zeros.windows:
        day = int(window.window_start // DAY)
        print(f"  day {day}: {window.rows[0][0]:>5} corrupt writes")

    print("\nroot cause: the external profile feed resets served-counters "
          "to 0, so the filtering phase believes capped users are fresh — "
          "exactly the 'erroneous input data' of paper §8.6.")


if __name__ == "__main__":
    main()
