"""E5 — paper Figs. 18/19: line-item cannibalization (case study 8.5).

Line item λ has budget and relaxed targeting but a low advisory bid
price; rivals with near-identical targeting price far above it.  The
Fig. 19-style query over auction events reports, per winning line item,
the number of wins (Fig. 18a) and the average winning bid price
(Fig. 18b).  The expected shape: λ never appears among the winners, and
every winner's average price clears λ's entire advisory band — the
diagnosis that led to bumping λ's price.
"""

from repro.adplatform import cannibalization_scenario
from repro.adplatform.auction import PRICE_BAND
from repro.cluster import run_to_completion
from repro.reporting import ExperimentReport

TRACE_SECONDS = 90.0


def run_experiment():
    scenario = cannibalization_scenario(users=300, pageview_rate=12.0)
    scenario.start(until=TRACE_SECONDS)
    handle = scenario.cluster.submit(
        f"Select auction.winner_line_item_id, COUNT(*), "
        f"AVG(auction.winner_price), MAX(auction.winner_price), "
        f"MIN(auction.winner_price) from auction "
        f"@[Service in AdServers] "
        f"window {int(TRACE_SECONDS)}s duration {int(TRACE_SECONDS)}s "
        f"group by auction.winner_line_item_id;"
    )
    results = run_to_completion(scenario.cluster, handle)
    return scenario, results


def test_fig18_cannibalization(benchmark):
    scenario, results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    lam = scenario.extras["lam"]
    rivals = {r.line_item_id for r in scenario.extras["rivals"]}

    rows = []
    for window in results.windows:
        for row in window.rows:
            rows.append(row)

    report = ExperimentReport(
        "E5_fig18_cannibalization",
        "auction wins and winning prices where λ participated",
    )
    report.note(
        f"λ = line item {lam.line_item_id}, advisory ${lam.advisory_price:.2f} "
        f"(band ceiling ${lam.advisory_price * (1 + PRICE_BAND):.2f}); "
        f"rivals at ${min(r.advisory_price for r in scenario.extras['rivals']):.2f}+"
    )
    report.table(
        "Fig. 18a/b: wins and prices per winning line item",
        ["line_item_id", "wins", "avg price", "max price", "min price"],
        sorted(
            ([r[0], r[1], r[2], r[3], r[4]] for r in rows),
            key=lambda r: -r[1],
        ),
    )
    report.emit()

    assert rows, "auctions must have produced winners"
    winner_ids = {row[0] for row in rows}
    # Fig. 18a: λ never wins.
    assert lam.line_item_id not in winner_ids
    # The rivals dominate the wins.
    wins_by_rivals = sum(row[1] for row in rows if row[0] in rivals)
    total_wins = sum(row[1] for row in rows)
    assert wins_by_rivals > 0.9 * total_wins
    # Fig. 18b: every winner's *minimum* winning price clears λ's band —
    # the full explanation of the cannibalization.
    lam_ceiling = lam.advisory_price * (1 + PRICE_BAND)
    assert all(row[4] > lam_ceiling for row in rows)
