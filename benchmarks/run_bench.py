#!/usr/bin/env python3
"""Pinned benchmark driver: central ingest and host fast path.

Runs the scenarios of ``test_perf_central_throughput`` and
``test_perf_fastpath`` at fixed seeds, outside pytest, and writes two
machine-readable artifacts at the repo root:

* ``BENCH_central.json`` — ScrubCentral ingest throughput for the
  per-event reference path (``CentralEngine.ingest_reference``, the
  pre-batching dispatch loop kept as executable documentation), the
  batched serial path (``CentralEngine.ingest``), the process pool on
  the pipe-bytes transport (``ShardPool`` with 1 and 4 workers), and
  the pool on the shared-memory ring transport (``pool_4_shm``, where
  the parent passes offsets, not bytes — docs/SCALING.md
  §"Shared-memory ring ingest"; its entry also records the ring spill
  counters).  Every mode consumes the same pre-encoded **wire
  frames** — exactly what a scrubd data channel receives — so decode
  cost is on the clock for every path: the serial modes decode then
  ingest, the pool takes its zero-copy ``ingest_frame`` scan
  (docs/SCALING.md §"Zero-copy shard ingest").  Every mode must
  produce **identical** window results — the run aborts otherwise.
* ``BENCH_fastpath.json`` — per-call cost of ``ScrubAgent.log`` in the
  regimes the minimal-impact claim depends on (disabled probe,
  selection rejects, match+ship, sampled out, overload drop).

Modes::

    python benchmarks/run_bench.py            # full run, rewrite artifacts
    python benchmarks/run_bench.py --quick    # small event counts (CI smoke)
    python benchmarks/run_bench.py --check    # full run + speedup assertions

``--quick`` still verifies serial/parallel equivalence but skips the
speedup floor (tiny runs are noise-dominated) and does not overwrite
committed artifacts unless ``--output-dir`` says so.

The machine matters: the pool cannot beat the batched serial path on a
single core (workers time-slice one CPU and pay IPC on top), so the
recorded artifact carries ``cpu_count`` and per-mode numbers.
``--check`` enforces **pool_4 ≥ serial_batched** and
**pool_4_shm ≥ pool_4** events/s on the heavy scenario only when
``cpu_count >= 4`` — on smaller boxes it prints an explicit skip note
instead of asserting a number the hardware cannot produce — and always
holds the batched serial path to its floor over the per-event
reference.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
import timeit
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.agent import ScrubAgent  # noqa: E402
from repro.core.agent.transport import (  # noqa: E402
    EventBatch,
    decode_full_batch,
    encode_full_batch,
)
from repro.core.central.engine import CentralEngine  # noqa: E402
from repro.core.central.pool import ShardPool  # noqa: E402
from repro.core.events import Event, EventRegistry  # noqa: E402
from repro.core.query import parse_query, plan_query, validate_query  # noqa: E402

SEED = 20180423  # EuroSys'18 — fixed so reruns replay identical streams
BATCH = 1_000
HOSTS = 4


# -- scenario construction ----------------------------------------------------


def _registry() -> EventRegistry:
    registry = EventRegistry()
    registry.define(
        "bid",
        [("exchange_id", "long"), ("bid_price", "double"), ("user_id", "long")],
    )
    return registry


def _plan(text: str, registry: EventRegistry):
    return plan_query(validate_query(parse_query(text), registry), "q1")


def _heavy_events(n: int) -> list[Event]:
    """The recorded heavy scenario: group-by + SUM + HLL + TOP-K.

    Derived deterministically from the index (no RNG state to drift):
    dyadic prices keep float sums exact under any grouping, so the
    serial/parallel comparison is byte-for-byte, not approximately-equal.
    """
    return [
        Event(
            "bid",
            {
                "exchange_id": (i * 7) % 12,
                "bid_price": (i % 8) * 0.25,
                "user_id": (i * 37) % 480,
            },
            i,
            i * 0.01,  # 100 events/s of virtual time -> several 60s windows
            f"h{i % HOSTS}",
        )
        for i in range(n)
    ]


def _shape_events(n: int, groups: int) -> list[Event]:
    """The pipeline-shape sweep events (mirrors test_perf_central_throughput)."""
    return [
        Event(
            "bid",
            {"exchange_id": i % groups, "bid_price": 1.0, "user_id": i % 97},
            i,
            1.0,
            f"h{i % HOSTS}",
        )
        for i in range(n)
    ]


HEAVY_QUERY = (
    "select bid.exchange_id, COUNT(*), SUM(bid.bid_price), "
    "COUNT_DISTINCT(bid.user_id), TOP(5, bid.user_id) "
    "from bid window 60s group by bid.exchange_id;"
)

SHAPES = [
    ("global_count", "select COUNT(*) from bid window 1h;", 1),
    (
        "global_sum_avg",
        "select SUM(bid.bid_price), AVG(bid.bid_price) from bid window 1h;",
        1,
    ),
    (
        "group_by_10",
        "select bid.exchange_id, COUNT(*) from bid window 1h "
        "group by bid.exchange_id;",
        10,
    ),
    (
        "group_by_1000",
        "select bid.exchange_id, COUNT(*) from bid window 1h "
        "group by bid.exchange_id;",
        1000,
    ),
    (
        "count_distinct",
        "select COUNT_DISTINCT(bid.user_id) from bid window 1h;",
        1,
    ),
    ("top_10", "select TOP(10, bid.user_id) from bid window 1h;", 1),
]


def _batches(events: list[Event]) -> list[EventBatch]:
    out = []
    for start in range(0, len(events), BATCH):
        chunk = events[start : start + BATCH]
        by_host: dict[str, list[Event]] = {}
        for event in chunk:
            by_host.setdefault(event.host, []).append(event)
        for host, host_events in sorted(by_host.items()):
            out.append(EventBatch(host=host, query_id="q1", events=host_events))
    return out


# -- measurement --------------------------------------------------------------


def _signature(results) -> str:
    """Canonical rendering of everything a result set observable carries."""
    extra = [
        (w.window_start, w.contributing_hosts) for w in results.windows
    ]
    return results.to_json() + "|" + repr(extra)


def _run_mode(mode: str, workers: int, plan, frames: list[bytes], transport=None):
    """Ingest every wire frame, finish the query; return
    ``(elapsed_s, signature, ring)``.

    Frames are pre-encoded outside the timer: agents pay the encode, the
    central pays whatever its mode needs — full decode for the serial
    paths, the zero-copy header scan for the pool.  Feeding everyone the
    same bytes keeps the comparison deployment-honest.  Pool modes pin
    their transport explicitly (the legacy pool modes force pipe-bytes
    so ``pool_4_shm`` measures the ring against a real baseline); *ring*
    carries the shm transport counters from ``pool_health()``, or
    ``None`` for non-shm modes.
    """
    ring = None
    if mode == "pool":
        engine: CentralEngine = ShardPool(
            workers=workers, grace_seconds=0.0, transport=transport or "pipe"
        )
    else:
        engine = CentralEngine(grace_seconds=0.0)
    try:
        engine.register(plan.central_object)
        start = time.perf_counter()
        if mode == "reference":
            for frame in frames:
                engine.ingest_reference(decode_full_batch(frame))
        else:
            # CentralEngine.ingest_frame decodes then batch-ingests; the
            # ShardPool override scans and ships raw slices to workers.
            for frame in frames:
                engine.ingest_frame(frame)
        results = engine.finish("q1")
        elapsed = time.perf_counter() - start
        if transport == "shm":
            health = engine.pool_health()
            ring = {
                "transport": health["transport"],
                "spills": health["ring_spills"],
                "bytes_in_place": health["ring_bytes_in_place"],
                "high_water": max(
                    (r["high_water"] for r in health["rings"]), default=0
                ),
            }
    finally:
        close = getattr(engine, "close", None)
        if close is not None:
            close()
    return elapsed, _signature(results), ring


MODES = [
    ("reference", "reference", 0, None),
    ("serial_batched", "serial", 0, None),
    ("pool_1", "pool", 1, "pipe"),
    ("pool_4", "pool", 4, "pipe"),
    ("pool_4_shm", "pool", 4, "shm"),
]


def bench_central(quick: bool) -> dict:
    registry = _registry()
    heavy_n = 6_000 if quick else 60_000
    shape_n = 2_000 if quick else 20_000
    scenarios = []
    specs = [("heavy_recorded", HEAVY_QUERY, _heavy_events(heavy_n))]
    specs += [
        (name, query, _shape_events(shape_n, groups))
        for name, query, groups in SHAPES
    ]
    for name, query, events in specs:
        plan = _plan(query, registry)
        batches = _batches(events)
        frames = [encode_full_batch(batch) for batch in batches]
        modes = {}
        signatures = {}
        for label, mode, workers, transport in MODES:
            elapsed, signature, ring = _run_mode(
                mode, workers, plan, frames, transport
            )
            modes[label] = {
                "elapsed_s": round(elapsed, 6),
                "events_per_s": round(len(events) / elapsed, 1),
            }
            if ring is not None:
                modes[label]["ring"] = ring
            signatures[label] = signature
        mismatched = [
            label
            for label in signatures
            if signatures[label] != signatures["serial_batched"]
        ]
        if mismatched:
            raise SystemExit(
                f"FATAL: window results diverged in scenario {name!r}: "
                f"{mismatched} != serial_batched"
            )
        reference = modes["reference"]["elapsed_s"]
        scenarios.append(
            {
                "scenario": name,
                "query": query,
                "events": len(events),
                "batches": len(batches),
                "modes": modes,
                "results_identical": True,
                "speedup_vs_reference": {
                    label: round(reference / modes[label]["elapsed_s"], 2)
                    for label, _, _, _ in MODES
                },
            }
        )
        print(
            f"  {name}: "
            + "  ".join(
                f"{label}={modes[label]['events_per_s']:,.0f}/s"
                for label, _, _, _ in MODES
            )
        )
    return {
        "benchmark": "central_ingest",
        "seed": SEED,
        "quick": quick,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "scenarios": scenarios,
    }


# -- fast path ----------------------------------------------------------------


class _NullTransport:
    def send(self, batch: EventBatch) -> None:
        pass


def _agent(
    buffer_capacity: int = 1_000_000,
    transport=None,
    use_codegen: bool = True,
    clock=None,
) -> ScrubAgent:
    registry = EventRegistry()
    registry.define(
        "bid",
        [
            ("exchange_id", "long"),
            ("city", "string"),
            ("bid_price", "double"),
            ("user_id", "long"),
        ],
    )
    registry.define("click", [("user_id", "long")])
    kwargs = {} if clock is None else {"clock": clock}
    return ScrubAgent(
        "h1",
        registry,
        transport if transport is not None else _NullTransport(),
        buffer_capacity=buffer_capacity,
        flush_batch_size=10**9,
        use_codegen=use_codegen,
        **kwargs,
    )


def _install(agent: ScrubAgent, text: str, query_id: str = "q1") -> None:
    plan = plan_query(
        validate_query(parse_query(text), agent.registry), query_id
    )
    for obj in plan.host_objects:
        agent.install(obj)


PAYLOAD = {"exchange_id": 5, "city": "San Jose", "bid_price": 1.25, "user_id": 7}


def _install_disabled(agent):
    _install(agent, "select COUNT(*) from click;")


def _install_rejecting(agent):
    _install(agent, "select COUNT(*) from bid where bid.exchange_id = 99;")


def _install_shipping(agent):
    _install(agent, "select COUNT(*) from bid;")


def _install_sampled(agent):
    _install(agent, "select COUNT(*) from bid sample events 1%;")


def _install_eight(agent):
    for i in range(8):
        _install(
            agent,
            f"select COUNT(*) from bid where bid.exchange_id = {i};",
            query_id=f"q{i}",
        )


def _install_dropping(agent):
    _install(agent, "select COUNT(*) from bid;")
    for i in range(4):
        agent.log("bid", PAYLOAD, request_id=i)


#: (regime name, buffer capacity, installer) — shared by the timing run
#: and the codegen differential so both cover the same armed shapes.
_FASTPATH_SCENARIOS = [
    ("disabled_probe", 1_000_000, _install_disabled),
    ("selection_rejects", 1_000_000, _install_rejecting),
    ("match_and_ship", 1_000_000, _install_shipping),
    ("match_sampled_out", 1_000_000, _install_sampled),
    ("eight_queries", 1_000_000, _install_eight),
    ("overload_drop", 4, _install_dropping),
]

#: The payload stream the differential replays: exercises matches,
#: rejects, sampling decisions, missing fields and the drop path.
_DIFF_PAYLOADS = [
    PAYLOAD,
    {"exchange_id": 99, "city": "Porto", "bid_price": 0.5, "user_id": 2},
    {"exchange_id": 3, "city": "San Mateo", "bid_price": 2.0},
    {"city": "Lisbon"},
    {},
]


def check_fastpath_equivalence(quick: bool) -> None:
    """Pin the generated dispatchers byte-identical to the closure path.

    Every bench scenario is replayed through two agents — codegen on
    and forced closures — with identical deterministic streams; return
    values, the full stat counters, and the encoded batches they put on
    the wire must match exactly.  Aborts the run otherwise (the same
    contract as the central engine's mode equivalence).
    """
    from repro.core.agent import RecordingTransport
    from repro.core.agent.transport import encode_full_batch

    n = 500 if quick else 5_000
    for name, capacity, installer in _FASTPATH_SCENARIOS:
        outcomes = []
        for use_codegen in (True, False):
            transport = RecordingTransport()
            # Byte-identical wire output needs identical timestamps: a
            # deterministic clock replayed for both agents.
            ticks = iter(range(10**9))
            agent = _agent(
                buffer_capacity=capacity,
                transport=transport,
                use_codegen=use_codegen,
                clock=lambda t=ticks: next(t) * 1e-3,
            )
            installer(agent)
            returns = [
                agent.log(
                    "bid", _DIFF_PAYLOADS[rid % len(_DIFF_PAYLOADS)], request_id=rid
                )
                for rid in range(n)
            ]
            agent.flush()
            wire = sorted(encode_full_batch(b) for b in transport.batches)
            outcomes.append((returns, wire, agent.stats))
        (ret_a, wire_a, stats_a), (ret_b, wire_b, stats_b) = outcomes
        if ret_a != ret_b or wire_a != wire_b or stats_a != stats_b:
            raise SystemExit(
                f"FATAL: codegen and closure paths diverge on {name!r}"
            )
    print(f"  codegen == closures on all {len(_FASTPATH_SCENARIOS)} scenarios")


def bench_fastpath(quick: bool) -> dict:
    n = 5_000 if quick else 50_000

    def measure(capacity, installer) -> float:
        agent = _agent(buffer_capacity=capacity)
        installer(agent)
        counter = iter(range(10**9))
        # min-of-repeats is the standard noise-robust per-call estimate
        # (interference only ever adds time); the --check ceilings gate
        # this minimum, so a GC pause or scheduler hiccup in one pass
        # cannot flunk a build the hardware actually passes.
        return (
            min(
                timeit.repeat(
                    lambda: agent.log("bid", PAYLOAD, request_id=next(counter)),
                    repeat=3,
                    number=n,
                )
            )
            / n
        )

    check_fastpath_equivalence(quick)
    regimes = {
        name: measure(capacity, installer)
        for name, capacity, installer in _FASTPATH_SCENARIOS
    }
    base = regimes["disabled_probe"]
    for name, seconds in regimes.items():
        print(f"  {name}: {seconds * 1e9:,.0f} ns/call ({seconds / base:.1f}x)")
    return {
        "benchmark": "host_fastpath",
        "seed": SEED,
        "quick": quick,
        "results_identical": True,  # check_fastpath_equivalence aborts otherwise
        "calls_per_regime": n,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "regimes": {
            name: {
                "ns_per_call": round(seconds * 1e9, 1),
                "x_disabled_probe": round(seconds / base, 2),
            }
            for name, seconds in regimes.items()
        },
    }


# -- driver -------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small event counts for CI smoke; equivalence still enforced",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="assert the pinned speedup floors after measuring",
    )
    parser.add_argument(
        "--output-dir",
        type=Path,
        default=REPO_ROOT,
        help="where to write BENCH_central.json / BENCH_fastpath.json",
    )
    args = parser.parse_args(argv)

    print(f"central ingest (quick={args.quick}, cpu_count={os.cpu_count()}):")
    central = bench_central(args.quick)
    print("host fast path:")
    fastpath = bench_fastpath(args.quick)

    args.output_dir.mkdir(parents=True, exist_ok=True)
    central_path = args.output_dir / "BENCH_central.json"
    fastpath_path = args.output_dir / "BENCH_fastpath.json"
    central_path.write_text(json.dumps(central, indent=2) + "\n")
    fastpath_path.write_text(json.dumps(fastpath, indent=2) + "\n")
    print(f"wrote {central_path} and {fastpath_path}")

    if args.check:
        heavy = central["scenarios"][0]
        cores = os.cpu_count() or 1
        # The batched hot path must clear its floor on any machine.  The
        # floor is far below the pre-frames era's 1.5x: every mode now
        # pays the wire decode (reference included), a shared additive
        # cost that compresses the ratio, and the heavy scenario's
        # sketch updates are per-item in both paths — measured ~1.1x on
        # the 1-core pin box (the shape sweep runs 1.2-1.3x), so 1.05
        # holds with noise margin while still catching a batched path
        # that regresses to per-event speed.
        floor = 1.05
        label = "serial_batched"
        speedup = heavy["speedup_vs_reference"]["serial_batched"]
        if speedup < floor:
            print(
                f"FAIL: {label} speedup over per-event reference is "
                f"{speedup:.2f}x (< {floor}x) on {heavy['scenario']}"
            )
            return 1
        # The headline parallel claim — pool_4 beats the batched serial
        # path — only means anything with real cores to spread across;
        # on a smaller box the workers time-slice one CPU and pay IPC on
        # top, so asserting it would pin a number the hardware cannot
        # produce.  Skip loudly, never silently.
        pool_eps = heavy["modes"]["pool_4"]["events_per_s"]
        serial_eps = heavy["modes"]["serial_batched"]["events_per_s"]
        if cores < 4:
            print(
                f"SKIP: pool-beats-serial assertion needs cpu_count >= 4, "
                f"have {cores} (pool_4 measured {pool_eps:,.0f}/s vs "
                f"serial_batched {serial_eps:,.0f}/s, not enforced)"
            )
        elif args.quick:
            print(
                "SKIP: pool-beats-serial assertion skipped under --quick "
                f"(tiny runs are IPC-startup-dominated; pool_4 measured "
                f"{pool_eps:,.0f}/s vs serial_batched {serial_eps:,.0f}/s)"
            )
        elif pool_eps < serial_eps:
            print(
                f"FAIL: pool_4 ingests {pool_eps:,.0f} events/s < "
                f"serial_batched {serial_eps:,.0f} events/s on "
                f"{heavy['scenario']} with {cores} cores"
            )
            return 1
        else:
            print(
                f"check OK: pool_4 {pool_eps:,.0f}/s >= serial_batched "
                f"{serial_eps:,.0f}/s on {heavy['scenario']}"
            )
        # The shared-memory ring must not lose to the pipe-bytes pool it
        # replaces: descriptors-instead-of-bytes only counts as a win if
        # the measurement says so.  Same honesty rules as above — the
        # comparison needs real cores and a non-trivial run, so smaller
        # boxes and --quick skip loudly, never silently.
        shm_eps = heavy["modes"]["pool_4_shm"]["events_per_s"]
        shm_ring = heavy["modes"]["pool_4_shm"].get("ring", {})
        print(
            f"  pool_4_shm ring: transport={shm_ring.get('transport', '?')} "
            f"spills={shm_ring.get('spills', 0)} "
            f"bytes_in_place={shm_ring.get('bytes_in_place', 0):,} "
            f"high_water={shm_ring.get('high_water', 0):,}"
        )
        if cores < 4:
            print(
                f"SKIP: shm-beats-pipe assertion needs cpu_count >= 4, "
                f"have {cores} (pool_4_shm measured {shm_eps:,.0f}/s vs "
                f"pool_4 {pool_eps:,.0f}/s, not enforced)"
            )
        elif args.quick:
            print(
                "SKIP: shm-beats-pipe assertion skipped under --quick "
                f"(tiny runs are IPC-startup-dominated; pool_4_shm measured "
                f"{shm_eps:,.0f}/s vs pool_4 {pool_eps:,.0f}/s)"
            )
        elif shm_eps < pool_eps:
            print(
                f"FAIL: pool_4_shm ingests {shm_eps:,.0f} events/s < "
                f"pool_4 {pool_eps:,.0f} events/s on "
                f"{heavy['scenario']} with {cores} cores"
            )
            return 1
        else:
            print(
                f"check OK: pool_4_shm {shm_eps:,.0f}/s >= pool_4 "
                f"{pool_eps:,.0f}/s on {heavy['scenario']}"
            )
        base = fastpath["regimes"]["disabled_probe"]["ns_per_call"]
        if base >= 3_000:
            print(f"FAIL: disabled probe costs {base:.0f} ns/call (>= 3 µs)")
            return 1
        # Machine-aware armed-path ceilings: the absolute targets are
        # pinned on the CI-class box whose disabled probe measures
        # ~162 ns; slower machines get the ceilings scaled by their own
        # probe cost, so the check tracks armed *overhead*, not CPU
        # generation.  Quick runs are noise-dominated — equivalence is
        # still enforced above, but timing ceilings are skipped.
        _REFERENCE_PROBE_NS = 162.1
        _CEILINGS_NS = {"match_and_ship": 1_200.0, "eight_queries": 2_200.0}
        if args.quick:
            print("note: --quick skips fastpath timing ceilings")
        else:
            scale = max(1.0, base / _REFERENCE_PROBE_NS)
            for regime, ceiling in _CEILINGS_NS.items():
                measured = fastpath["regimes"][regime]["ns_per_call"]
                limit = ceiling * scale
                if measured > limit:
                    print(
                        f"FAIL: {regime} costs {measured:.0f} ns/call "
                        f"(> {limit:.0f} ns ceiling at scale {scale:.2f})"
                    )
                    return 1
        print(
            f"check OK: {label} {speedup:.2f}x over reference; "
            f"disabled probe {base:.0f} ns/call"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
