"""E11 — Scrub vs the logging baseline (paper §§1, 6, 8.1).

The paper's central comparison: since queries are not known a priori, a
logging regime must ship and retain *all* data and answer questions
with offline batch jobs; Scrub collects on demand.  Both regimes run
the spam-detection question on identical workloads; the table reports
bytes shipped off the hosts, central storage, host CPU overhead, and
time-to-first-answer.

Expected shape: logging ships 1-2 orders of magnitude more bytes and
answers only after the trace ends plus a batch-job runtime, while
Scrub's first window lands seconds into the trace; and both regimes
compute the same answer.
"""

from repro.adplatform import spam_scenario
from repro.baselines import BatchQueryEngine, LoggingBaseline
from repro.cluster import run_to_completion
from repro.reporting import ExperimentReport

TRACE = 60.0
QUERY = (
    "Select bid.user_id, COUNT(*) from bid "
    "window 10s duration {d}s group by bid.user_id;"
)


def run_logging_regime():
    scenario = spam_scenario(users=300, pageview_rate=10.0)
    baseline = LoggingBaseline(scenario.cluster)
    baseline.install()
    scenario.start(until=TRACE)
    scenario.cluster.run_until(TRACE + 3.0)
    report = BatchQueryEngine(scenario.cluster.registry).run(
        QUERY.format(d=int(TRACE)), baseline.store
    )
    return {
        "bytes_shipped": scenario.cluster.scrub_bytes_shipped(),
        "storage": baseline.store.stats.json_bytes,
        "events_collected": baseline.store.stats.events,
        "overhead": scenario.cluster.overhead_summary("AdServers").max_overhead,
        "time_to_answer": TRACE + report.estimated_runtime_seconds,
        "answer": _fold(report.results),
    }


def run_scrub_regime():
    scenario = spam_scenario(users=300, pageview_rate=10.0)
    scenario.start(until=TRACE)
    first_window = []
    scenario.cluster.on_window(
        lambda w: first_window.append(scenario.cluster.now)
        if not first_window else None
    )
    handle = scenario.cluster.submit(QUERY.format(d=int(TRACE)))
    results = run_to_completion(scenario.cluster, handle)
    return {
        "bytes_shipped": scenario.cluster.scrub_bytes_shipped(),
        "storage": 0,
        "overhead": scenario.cluster.overhead_summary("AdServers").max_overhead,
        "time_to_answer": first_window[0],
        "answer": _fold(results),
    }


def _fold(results):
    """(window, user) -> count, for answer equivalence checking.

    Only windows inside the query span compare: traffic emitted at
    exactly t=TRACE is past the Scrub span (agents stop matching) but
    present in the always-on log, so the batch job reports one extra
    boundary window.
    """
    out = {}
    for window in results.windows:
        if window.window_start >= TRACE:
            continue
        for row in window.rows:
            out[(window.window_start, row[0])] = row[1]
    return out


def test_scrub_vs_logging(benchmark):
    def run_both():
        return run_logging_regime(), run_scrub_regime()

    logging_run, scrub_run = benchmark.pedantic(run_both, rounds=1, iterations=1)

    report = ExperimentReport(
        "E11_logging_baseline", "the same question under both regimes"
    )
    report.table(
        f"spam query over a {TRACE:g}s trace",
        ["metric", "log-everything + batch", "Scrub"],
        [
            ["bytes shipped off hosts", f"{logging_run['bytes_shipped']:,}",
             f"{scrub_run['bytes_shipped']:,}"],
            ["central storage (bytes)", f"{logging_run['storage']:,}",
             f"{scrub_run['storage']:,}"],
            ["max AdServer CPU overhead",
             f"{logging_run['overhead'] * 100:.2f}%",
             f"{scrub_run['overhead'] * 100:.2f}%"],
            ["time to first answer (s)", f"{logging_run['time_to_answer']:.1f}",
             f"{scrub_run['time_to_answer']:.1f}"],
        ],
    )
    ratio = logging_run["bytes_shipped"] / max(scrub_run["bytes_shipped"], 1)
    report.note(
        f"logging shipped {ratio:.0f}x the bytes and collected "
        f"{logging_run['events_collected']:,} events to answer one question."
    )
    report.emit()

    # Identical workload -> identical answers (same windows, same counts).
    assert logging_run["answer"] == scrub_run["answer"]
    # Logging ships at least an order of magnitude more.
    assert ratio > 10
    # Scrub answers during the trace; logging after it (plus batch time).
    assert scrub_run["time_to_answer"] < TRACE / 2
    assert logging_run["time_to_answer"] > TRACE
    # Collect-everything also loads the hosts more.
    assert logging_run["overhead"] > scrub_run["overhead"]
