"""E10 — ScrubCentral throughput and scaling.

The paper's execution strategy concentrates joins, group-bys and
aggregations in ScrubCentral — which only works if a small central
cluster keeps up with the event streams the hosts ship ("only a small
ScrubCentral cluster was needed", §8.1).  These benchmarks measure the
central engine's single-core ingest rate for the three pipeline shapes
(global aggregate, group-by, equi-join) and how it scales with group
cardinality and the number of contributing hosts.
"""

import pytest

from repro.core.agent.transport import EventBatch
from repro.core.central.engine import CentralEngine
from repro.core.events import Event, EventRegistry
from repro.core.query import parse_query, plan_query, validate_query
from repro.reporting import ExperimentReport

BATCH = 1_000


def _registry():
    registry = EventRegistry()
    registry.define("bid", [
        ("exchange_id", "long"), ("bid_price", "double"), ("user_id", "long"),
    ])
    registry.define("exclusion", [("reason", "string")])
    return registry


def _engine(text, registry):
    engine = CentralEngine(grace_seconds=0.0)
    plan = plan_query(validate_query(parse_query(text), registry), "q1")
    engine.register(plan.central_object)
    return engine


def _bid_events(n, groups=1, start_rid=0):
    return [
        Event(
            "bid",
            {"exchange_id": i % groups, "bid_price": 1.0, "user_id": i % 97},
            start_rid + i,
            1.0,
            "h1",
        )
        for i in range(n)
    ]


@pytest.mark.parametrize(
    "label,query,groups",
    [
        ("global COUNT", "select COUNT(*) from bid window 1h;", 1),
        ("global SUM+AVG",
         "select SUM(bid.bid_price), AVG(bid.bid_price) from bid window 1h;", 1),
        ("group-by 10",
         "select bid.exchange_id, COUNT(*) from bid window 1h "
         "group by bid.exchange_id;", 10),
        ("group-by 1000",
         "select bid.exchange_id, COUNT(*) from bid window 1h "
         "group by bid.exchange_id;", 1000),
        ("COUNT_DISTINCT",
         "select COUNT_DISTINCT(bid.user_id) from bid window 1h;", 1),
        ("TOP-10",
         "select TOP(10, bid.user_id) from bid window 1h;", 1),
    ],
)
def test_central_ingest_rate(benchmark, label, query, groups):
    registry = _registry()
    engine = _engine(query, registry)
    events = _bid_events(BATCH, groups=groups)
    state = {"rid": BATCH}

    def ingest_batch():
        # Fresh request ids per round keep join/window state realistic.
        batch = EventBatch(host="h1", query_id="q1", events=events)
        engine.ingest(batch)
        state["rid"] += BATCH

    benchmark.extra_info["events_per_round"] = BATCH
    benchmark(ingest_batch)
    rate = BATCH / benchmark.stats["mean"]
    # A single Python core must sustain a usefully high rate; the paper's
    # central cluster is native and parallel, so only the order of
    # magnitude matters here.
    assert rate > 50_000, f"{label}: {rate:.0f} events/s"


def test_join_ingest_and_close(benchmark):
    registry = _registry()

    def run():
        engine = _engine(
            "select exclusion.reason, COUNT(*) from bid, exclusion "
            "window 1h group by exclusion.reason;",
            registry,
        )
        n = 5_000
        events = []
        for rid in range(n):
            events.append(Event("bid", {"exchange_id": 1, "bid_price": 1.0,
                                        "user_id": rid}, rid, 1.0, "h1"))
            events.append(Event("exclusion", {"reason": f"R{rid % 5}"},
                                rid, 1.0, "h2"))
        engine.ingest(EventBatch(host="h1", query_id="q1", events=events))
        results = engine.finish("q1")
        return n, results

    n, results = benchmark(run)
    assert sum(r[1] for r in results.rows) == n


def test_throughput_summary_report(benchmark):
    """Aggregate sweep for the E10 report artifact."""
    import time as _time

    registry = _registry()
    configs = [
        ("global COUNT", "select COUNT(*) from bid window 1h;", 1),
        ("group-by 10", "select bid.exchange_id, COUNT(*) from bid window 1h "
                        "group by bid.exchange_id;", 10),
        ("group-by 1000", "select bid.exchange_id, COUNT(*) from bid window 1h "
                          "group by bid.exchange_id;", 1000),
        ("COUNT_DISTINCT", "select COUNT_DISTINCT(bid.user_id) from bid "
                           "window 1h;", 1),
        ("TOP-10", "select TOP(10, bid.user_id) from bid window 1h;", 1),
    ]

    def sweep():
        rows = []
        for label, query, groups in configs:
            engine = _engine(query, registry)
            events = _bid_events(20_000, groups=groups)
            start = _time.perf_counter()
            engine.ingest(EventBatch(host="h1", query_id="q1", events=events))
            elapsed = _time.perf_counter() - start
            rows.append([label, f"{20_000 / elapsed:,.0f}"])
        # Host-count scaling: same event volume split across many hosts.
        for hosts in (1, 10, 100):
            engine = _engine("select COUNT(*) from bid window 1h;", registry)
            per_host = 20_000 // hosts
            start = _time.perf_counter()
            for h in range(hosts):
                events = [
                    Event("bid", {"exchange_id": 1, "bid_price": 1.0,
                                  "user_id": i}, h * per_host + i, 1.0, f"h{h}")
                    for i in range(per_host)
                ]
                engine.ingest(EventBatch(host=f"h{h}", query_id="q1",
                                         events=events))
            elapsed = _time.perf_counter() - start
            rows.append([f"COUNT from {hosts} hosts", f"{20_000 / elapsed:,.0f}"])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report = ExperimentReport(
        "E10_central_throughput",
        "ScrubCentral single-core ingest rate (events/second)",
    )
    report.table("pipeline shapes", ["configuration", "events/s"], rows)
    report.note(
        "the paper's ScrubCentral is a small dedicated cluster; a single "
        "Python core sustaining 10^5-10^6 events/s supports the claim that "
        "central execution does not need big-data infrastructure."
    )
    report.emit()
    assert all(float(r[1].replace(",", "")) > 30_000 for r in rows)
