"""E9 — paper §3.2, Eqs. 1-3: sampling accuracy and error bounds.

Sweeps the two-level sampling grid (host rate × event rate) for an
approximate SUM over a heterogeneous host population with known ground
truth, reporting for each point the relative error of the estimate and
the predicted 95% error bound ε — and, across the whole grid, the CI
coverage (the bound should contain the truth ~95% of the time) and the
bytes-shipped savings relative to exhaustive collection.

Expected shape: error grows as rates shrink; the predicted ε tracks the
realized error; shipped bytes fall roughly proportionally to the
product of the rates.
"""

import math

from repro.core import ManualClock, Scrub
from repro.core.agent.sampling import uniform_from_hash
from repro.reporting import ExperimentReport

HOSTS = 40
EVENTS_PER_HOST = 300
GRID = [1.0, 0.5, 0.25, 0.10]


def run_grid():
    rows = []
    covered = 0
    total_points = 0
    for host_rate in GRID:
        for event_rate in GRID:
            clock = ManualClock()
            scrub = Scrub(clock=clock, grace_seconds=0.0)
            scrub.define_event("reading", [("value", "double"), ("sensor", "long")])
            hosts = [
                scrub.add_host(f"h{i}", services=["Sensors"]) for i in range(HOSTS)
            ]
            sampling = []
            if host_rate < 1.0:
                sampling.append(f"sample hosts {host_rate * 100:g}%")
            if event_rate < 1.0:
                sampling.append(f"sample events {event_rate * 100:g}%")
            handle = scrub.submit(
                "Select SUM(reading.value) from reading "
                "@[Service in Sensors] " + " ".join(sampling) +
                " window 100s duration 100s;"
            )
            # Heterogeneous, deterministic workload: host i's values are
            # drawn from a host-specific band, so machine-stage variance
            # is real.
            truth = 0.0
            rid = 0
            for i, host in enumerate(hosts):
                scale = 0.5 + 1.5 * uniform_from_hash(77, i)
                for j in range(EVENTS_PER_HOST):
                    rid += 1
                    value = scale * (0.5 + uniform_from_hash(88, rid))
                    truth += value
                    host.log("reading", value=value, sensor=i, request_id=rid)
            clock.set(101.0)
            results = scrub.finish(handle.query_id)
            (window,) = results.windows
            est = window.estimates.get("SUM(reading.value)")
            if est is None:
                # Unsampled queries are exact; no estimator runs.
                estimate, bound = window.rows[0][0], 0.0
            else:
                estimate, bound = est.estimate, est.error_bound
            rel_error = abs(estimate - truth) / truth
            rel_bound = bound / truth if math.isfinite(bound) else float("inf")
            in_ci = estimate - bound <= truth <= estimate + bound
            bytes_shipped = sum(h.stats.bytes_shipped for h in hosts)
            rows.append([
                f"{host_rate * 100:g}%", f"{event_rate * 100:g}%",
                f"{rel_error * 100:.2f}%",
                ("inf" if not math.isfinite(rel_bound) else f"{rel_bound * 100:.2f}%"),
                in_ci, bytes_shipped,
            ])
            total_points += 1
            if in_ci:
                covered += 1
    return rows, covered, total_points


def test_eq123_sampling_error_bounds(benchmark):
    rows, covered, total_points = benchmark.pedantic(
        run_grid, rounds=1, iterations=1
    )

    report = ExperimentReport(
        "E9_sampling_accuracy",
        "approximate SUM under two-level sampling (Eqs. 1-3)",
    )
    report.table(
        "error vs predicted 95% bound",
        ["hosts", "events", "rel. error", "rel. ε (95%)", "truth in CI",
         "bytes shipped"],
        rows,
    )
    report.note(
        f"CI coverage: {covered}/{total_points} grid points; "
        f"population: {HOSTS} hosts x {EVENTS_PER_HOST} events."
    )
    report.emit()

    by_key = {
        (r[0], r[1]): r for r in rows
    }
    # Exhaustive collection is exact with a zero bound.
    full = by_key[("100%", "100%")]
    assert full[2] == "0.00%" and full[3] == "0.00%"
    # Coverage: the 95% bound holds on (almost) all points.
    assert covered >= total_points - 2
    # Bytes shipped shrink with the sampling product.
    full_bytes = by_key[("100%", "100%")][5]
    tenth = by_key[("10%", "10%")][5]
    assert tenth < 0.05 * full_bytes
    # Error grows as sampling gets more aggressive (full vs most-sampled).
    most_sampled_error = float(by_key[("10%", "10%")][2].rstrip("%"))
    assert most_sampled_error > 0.0
