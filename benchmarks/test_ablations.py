"""E14-E16 — ablations of the design choices DESIGN.md §7 calls out.

The paper's design runs *counter to conventional wisdom* in three ways;
each ablation implements the conventional alternative and measures the
trade:

* **E14 central vs host-side aggregation** — the opt-in AGGREGATE ON
  HOSTS mode ships partial aggregates instead of events.  It saves
  bytes, but host memory grows with window × group cardinality — the
  unbounded host impact the paper's central execution avoids.
* **E15 targeting in the language vs a hostname predicate** — the same
  question asked via ``@[Server = x]`` and via a ``WHERE host = 'x'``
  selection installed everywhere.  The predicate variant makes every
  host in the fleet pay per-event costs for data only one host has.
* **E16 drop-instead-of-block buffers** — bounded buffers under
  overload lose events (counted), while an unbounded buffer keeps
  everything at the price of unbounded host memory.
"""

from repro.core import ManualClock, Scrub
from repro.reporting import ExperimentReport


def _fresh_scrub(hosts, buffer_capacity=10_000, flush_batch_size=500):
    clock = ManualClock()
    scrub = Scrub(
        clock=clock, grace_seconds=0.0, buffer_capacity=buffer_capacity,
        flush_batch_size=flush_batch_size,
    )
    scrub.define_event("bid", [("user_id", "long"), ("bid_price", "double")])
    agents = [
        scrub.add_host(f"host{i}", services=["BidServers"]) for i in range(hosts)
    ]
    return clock, scrub, agents


# -- E14: central vs host-side aggregation ------------------------------------------


def _run_aggregation_mode(mode_clause, users=2_000, ticks=30):
    clock, scrub, agents = _fresh_scrub(hosts=4)
    handle = scrub.submit(
        f"select bid.user_id, COUNT(*), SUM(bid.bid_price) from bid "
        f"window 10s duration {ticks + 5}s {mode_clause} group by bid.user_id;"
    )
    rid = 0
    peak_state = 0
    for t in range(ticks):
        clock.set(float(t))
        for agent in agents:
            for _ in range(40):
                rid += 1
                agent.log(
                    "bid", user_id=rid % users, bid_price=1.0, request_id=rid
                )
        peak_state = max(peak_state, sum(a.preagg_state_count for a in agents))
        scrub.tick()
    clock.set(float(ticks + 6))
    results = scrub.finish(handle.query_id)
    folded = {
        (w.window_start, r[0]): r.values[1:]
        for w in results.windows
        for r in w.rows
    }
    return {
        "bytes": sum(a.stats.bytes_shipped for a in agents),
        "events_shipped": sum(a.stats.events_shipped for a in agents),
        "peak_host_state": peak_state,
        "answer": folded,
    }


def test_e14_central_vs_host_aggregation(benchmark):
    def run_all():
        return {
            ("central", "low"): _run_aggregation_mode("", users=20),
            ("preagg", "low"): _run_aggregation_mode(
                "aggregate on hosts", users=20
            ),
            ("central", "high"): _run_aggregation_mode("", users=2_000),
            ("preagg", "high"): _run_aggregation_mode(
                "aggregate on hosts", users=2_000
            ),
        }

    runs = benchmark.pedantic(run_all, rounds=1, iterations=1)

    report = ExperimentReport(
        "E14_ablation_host_agg",
        "ship events + aggregate centrally (paper) vs pre-aggregate on hosts",
    )
    rows = []
    for card, label in (("low", "20 users"), ("high", "2000 users")):
        central = runs[("central", card)]
        preagg = runs[("preagg", card)]
        rows.append([
            label,
            f"{central['bytes']:,}",
            f"{preagg['bytes']:,}",
            central["peak_host_state"],
            preagg["peak_host_state"],
        ])
    report.table(
        "GROUP BY user_id at two group cardinalities (4 hosts, 4800 events)",
        ["cardinality", "central bytes", "preagg bytes",
         "central host-states", "preagg host-states"],
        rows,
    )
    report.note(
        "pre-aggregation only pays when events >> groups: at high group "
        "cardinality it ships *more* bytes than events would, while its "
        "per-host state grows with window x groups regardless — the "
        "unbounded host impact the paper's central execution avoids."
    )
    report.emit()

    for card in ("low", "high"):
        assert runs[("central", card)]["answer"] == runs[("preagg", card)]["answer"]
        assert runs[("central", card)]["peak_host_state"] == 0
    # Low cardinality: the conventional-wisdom win is real.
    assert runs[("preagg", "low")]["bytes"] < runs[("central", "low")]["bytes"] / 3
    # High cardinality: no byte win (partials approach event volume)...
    assert runs[("preagg", "high")]["bytes"] > runs[("central", "high")]["bytes"] / 2
    # ...and the host pays with per-group state either way.
    assert runs[("preagg", "high")]["peak_host_state"] >= 1_000


# -- E15: targeting construct vs hostname predicate -----------------------------------


def _run_targeting(query_text, ticks=20, fleet=20):
    clock, scrub, agents = _fresh_scrub(hosts=fleet)
    handle = scrub.submit(query_text.format(d=ticks + 5))
    rid = 0
    for t in range(ticks):
        clock.set(float(t))
        for agent in agents:
            for _ in range(10):
                rid += 1
                agent.log("bid", user_id=rid % 7, bid_price=1.0, request_id=rid)
        scrub.tick()
    clock.set(float(ticks + 6))
    results = scrub.finish(handle.query_id)
    from repro.cluster.host import DEFAULT_COST_MODEL

    fleet_cpu = sum(DEFAULT_COST_MODEL.agent_cost(a.stats) for a in agents)

    def query_cpu(agent):
        # Query-attributable work: everything beyond the disabled probe.
        return DEFAULT_COST_MODEL.agent_cost(agent.stats) - (
            agent.stats.events_logged * DEFAULT_COST_MODEL.log_call
        )

    return {
        "hosts_examining": sum(
            1 for a in agents if a.stats.events_examined > 0
        ),
        "fleet_checks": sum(a.stats.events_checked for a in agents),
        "fleet_scrub_cpu": fleet_cpu,
        # Work done by hosts that do NOT hold the answer — the load the
        # @[...] construct exists to avoid.
        "nontarget_cpu": sum(
            query_cpu(a) for a in agents if a.host != "host5"
        ),
        "total": sum(r[0] for r in results.rows),
    }


def test_e15_targeting_vs_hostname_predicate(benchmark):
    targeted_query = (
        "select COUNT(*) from bid @[Server = host5] "
        "window 10s duration {d}s;"
    )
    predicate_query = (
        "select COUNT(*) from bid where bid.host = 'host5' "
        "window 10s duration {d}s;"
    )

    def run_both():
        return _run_targeting(targeted_query), _run_targeting(predicate_query)

    targeted, predicated = benchmark.pedantic(run_both, rounds=1, iterations=1)

    report = ExperimentReport(
        "E15_ablation_targeting",
        "@[Server = x] targeting vs WHERE host = 'x' on a 20-host fleet",
    )
    report.table(
        "one-host question, two formulations",
        ["metric", "@[...] target (paper)", "hostname predicate"],
        [
            ["hosts doing any work", targeted["hosts_examining"],
             predicated["hosts_examining"]],
            ["fleet (query,event) checks", f"{targeted['fleet_checks']:,}",
             f"{predicated['fleet_checks']:,}"],
            ["fleet Scrub CPU (modelled s)",
             f"{targeted['fleet_scrub_cpu']:.6f}",
             f"{predicated['fleet_scrub_cpu']:.6f}"],
            ["non-target-host CPU (s)",
             f"{targeted['nontarget_cpu']:.6f}",
             f"{predicated['nontarget_cpu']:.6f}"],
            ["answer (total count)", targeted["total"], predicated["total"]],
        ],
    )
    report.note(
        "putting targeting in the language lets Scrub limit execution to "
        "the specified hosts (paper §3.2); as a selection it would load "
        "every host in the fleet."
    )
    report.emit()

    assert targeted["total"] == predicated["total"]
    assert targeted["hosts_examining"] == 1
    assert predicated["hosts_examining"] == 20
    assert predicated["fleet_checks"] > 15 * targeted["fleet_checks"]
    # Targeting keeps the other 19 hosts completely idle; the predicate
    # formulation loads them with per-event work that yields nothing.
    assert targeted["nontarget_cpu"] == 0.0
    assert predicated["nontarget_cpu"] > 0.0


# -- E16: drop-instead-of-block buffers --------------------------------------------------


def _run_overload(buffer_capacity, burst=5_000):
    # A huge flush batch size disables the auto-flush relief valve, so
    # the whole burst lands on the buffer before any flush can run.
    clock, scrub, agents = _fresh_scrub(
        hosts=1, buffer_capacity=buffer_capacity, flush_batch_size=10**9
    )
    agent = agents[0]
    handle = scrub.submit("select COUNT(*) from bid window 100s duration 100s;")
    peak_buffer = 0
    # A burst far beyond the flush cadence: everything arrives before the
    # first flush can run.
    for rid in range(burst):
        agent.log("bid", user_id=rid % 3, bid_price=1.0, request_id=rid)
        peak_buffer = max(peak_buffer, agent.buffered)
    clock.set(101.0)
    results = scrub.finish(handle.query_id)
    return {
        "peak_buffer": peak_buffer,
        "dropped": agent.stats.events_dropped,
        "reported_drops": results.total_host_dropped,
        "counted": sum(r[0] for r in results.rows),
    }


def test_e16_bounded_vs_unbounded_buffers(benchmark):
    burst = 5_000

    def run_both():
        return _run_overload(1_000, burst), _run_overload(10**9, burst)

    bounded, unbounded = benchmark.pedantic(run_both, rounds=1, iterations=1)

    report = ExperimentReport(
        "E16_ablation_buffers",
        "bounded drop-not-block buffer (paper) vs unbounded buffering",
    )
    report.table(
        f"{burst}-event burst faster than the flusher",
        ["metric", "bounded (1k)", "unbounded"],
        [
            ["peak buffered events", bounded["peak_buffer"],
             unbounded["peak_buffer"]],
            ["events dropped", bounded["dropped"], unbounded["dropped"]],
            ["drops reported to user", bounded["reported_drops"],
             unbounded["reported_drops"]],
            ["events counted", bounded["counted"], unbounded["counted"]],
        ],
    )
    report.note(
        "accuracy is traded for minimal impact (paper abstract): the "
        "bounded agent's memory stays flat and the loss is *reported*, "
        "while unbounded buffering grows host memory with the backlog."
    )
    report.emit()

    # Bounded: memory capped, losses counted AND visible in the results.
    assert bounded["peak_buffer"] <= 1_000
    assert bounded["dropped"] == burst - 1_000
    assert bounded["reported_drops"] == bounded["dropped"]
    assert bounded["counted"] == 1_000
    # Unbounded: complete results, at the cost of a backlog as large as
    # the burst sitting in host memory.
    assert unbounded["counted"] == burst
    assert unbounded["peak_buffer"] >= burst * 0.9
