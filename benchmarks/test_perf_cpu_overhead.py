"""E7 — paper §9/abstract: host CPU overhead vs query load.

"On average, we observe a maximum CPU overhead of up to 2.5% on
application hosts."  This experiment sweeps the number of concurrently
active queries on a fixed bidding workload and reports, per service,
Scrub CPU as a fraction of application CPU (simulated cost accounting;
the per-operation constants are anchored by the E12 microbenchmarks —
see DESIGN.md's substitution table).

Two sweeps are run: one where queries touching the high-volume
exclusion stream collect it in full, and one where they use the
language's event sampling (paper §3.2: "sampling reduces the load on
the hosts ... if the query touches many events").  Expected shape:
overhead grows with query load; with sampling on the heavy streams it
stays in the paper's ≤2.5% regime even at 8 concurrent queries, while
full collection of every exclusion event visibly exceeds it — the
trade the language construct exists to control.
"""

from repro.adplatform import perf_scenario
from repro.reporting import ExperimentReport

TRACE_SECONDS = 40.0

#: Representative concurrent queries; '{s}' marks where the sampled
#: variant inserts an event-sampling clause on high-volume streams.
QUERY_POOL = [
    "Select COUNT(*) from bid @[Service in BidServers] "
    "window 10s duration {d}s;",
    "Select bid.user_id, COUNT(*) from bid @[Service in BidServers] "
    "window 10s duration {d}s group by bid.user_id;",
    "Select exclusion.reason, COUNT(*) from exclusion "
    "@[Service in AdServers] {s} window 10s duration {d}s "
    "group by exclusion.reason;",
    "Select AVG(bid.bid_price) from bid where bid.exchange_id = 4000001 "
    "@[Service in BidServers] window 10s duration {d}s;",
    "Select COUNT(*) from auction @[Service in AdServers] "
    "window 10s duration {d}s;",
    "Select impression.exchange_id, COUNT(*) from impression "
    "@[Service in PresentationServers] window 10s duration {d}s "
    "group by impression.exchange_id;",
    "Select COUNT_DISTINCT(bid.user_id) from bid "
    "@[Service in BidServers] window 10s duration {d}s;",
    "Select TOP(10, exclusion.line_item_id) from exclusion "
    "@[Service in AdServers] {s} window 10s duration {d}s;",
]

SERVICES = ("BidServers", "AdServers", "PresentationServers")


def run_point(n_queries: int, sample_heavy_streams: bool):
    scenario = perf_scenario(users=300, pageview_rate=20.0)
    scenario.start(until=TRACE_SECONDS)
    sampling = "sample events 10%" if sample_heavy_streams else ""
    for i in range(n_queries):
        query = QUERY_POOL[i % len(QUERY_POOL)].format(
            d=int(TRACE_SECONDS), s=sampling
        )
        scenario.cluster.submit(query)
    scenario.cluster.run_until(TRACE_SECONDS + 4.0)
    return {
        service: scenario.cluster.overhead_summary(service)
        for service in SERVICES
    }


def test_cpu_overhead_vs_query_load(benchmark):
    query_counts = [0, 1, 2, 4, 8]

    def sweep():
        sampled = {n: run_point(n, True) for n in query_counts}
        full = run_point(8, False)
        return sampled, full

    sampled, full8 = benchmark.pedantic(sweep, rounds=1, iterations=1)

    report = ExperimentReport(
        "E7_cpu_overhead", "host CPU overhead (scrub/app) vs active queries"
    )
    rows = []
    for n in query_counts:
        rows.append(
            [n] + [f"{sampled[n][s].max_overhead * 100:.3f}%" for s in SERVICES]
        )
    report.table(
        "max per-host overhead by service (heavy streams sampled at 10%)",
        ["active queries", *SERVICES],
        rows,
    )
    report.table(
        "ablation: 8 queries with the exclusion stream collected in full",
        ["collection", *SERVICES],
        [
            ["sampled 10%"] + [f"{sampled[8][s].max_overhead * 100:.3f}%" for s in SERVICES],
            ["full"] + [f"{full8[s].max_overhead * 100:.3f}%" for s in SERVICES],
        ],
    )
    report.note(
        "paper-reported: max CPU overhead up to 2.5% on application hosts; "
        "event sampling is the language's lever for queries touching "
        "high-volume streams (paper §3.2)."
    )
    report.emit()

    def worst(point):
        return max(s.max_overhead for s in point.values())

    # With no query, only the disabled-probe fast path runs: well under 1%.
    assert worst(sampled[0]) < 0.005
    # Overhead grows with query load.
    assert worst(sampled[8]) > worst(sampled[1]) > worst(sampled[0])
    # With sampling on the heavy streams, 8 concurrent queries stay in the
    # paper's regime.
    assert worst(sampled[8]) < 0.025
    # Collecting every exclusion event in full costs measurably more —
    # the trade the sampling construct controls.
    assert worst(full8) > 1.5 * worst(sampled[8])
    # ...and is what pushes past the paper's 2.5% figure.
    assert worst(full8) > 0.025
