"""E6 — paper 8.6: the incorrectly-set frequency-cap field.

A customer configured one ad per user per day, yet users received more.
The platform's own counter writes are correct; an external profile feed
intermittently writes zeros (the "erroneous input data" the paper
suspected).  Two Scrub queries localize the bug:

* impressions per user for the capped line item — shows cap violations;
* profile_update events from the feed with frequency_count = 0 —
  exposes the corrupt writes themselves.

A healthy-feed control run shows the cap holding, confirming the feed
as the root cause.
"""

from collections import Counter

from repro.adplatform import frequency_cap_scenario
from repro.reporting import ExperimentReport

TRACE = 240.0
DAY = 60.0  # accelerated day length


def run_one(corruption_rate):
    scenario = frequency_cap_scenario(
        users=120, pageview_rate=15.0, cap=1,
        corruption_rate=corruption_rate,
        seconds_per_day=DAY, feed_period=10.0,
    )
    scenario.start(until=TRACE)
    capped = scenario.extras["capped_line_item"]
    per_user = scenario.cluster.submit(
        f"Select impression.user_id, COUNT(*) from impression "
        f"where impression.line_item_id = {capped.line_item_id} "
        f"window {int(DAY)}s duration {int(TRACE)}s "
        f"group by impression.user_id;"
    )
    zero_feed_writes = scenario.cluster.submit(
        f"Select COUNT(*) from profile_update "
        f"where profile_update.line_item_id = {capped.line_item_id} "
        f"and profile_update.source = 'feed' "
        f"and profile_update.frequency_count = 0 "
        f"window {int(TRACE)}s duration {int(TRACE)}s;"
    )
    scenario.cluster.run_until(TRACE + 5.0)
    impressions = scenario.cluster.server.finish(per_user.query_id)
    zeros = scenario.cluster.server.finish(zero_feed_writes.query_id)

    # Per (user, day-window) counts above the cap.
    violation_histogram: Counter = Counter()
    for window in impressions.windows:
        for row in window.rows:
            violation_histogram[row[1]] += 1
    zero_writes = sum(r[0] for r in zeros.rows)
    return scenario, violation_histogram, zero_writes


def test_frequency_cap_root_cause(benchmark):
    def run_both():
        return run_one(corruption_rate=0.8), run_one(corruption_rate=0.0)

    (buggy, control) = benchmark.pedantic(run_both, rounds=1, iterations=1)
    scenario_b, hist_b, zeros_b = buggy
    _scenario_c, hist_c, zeros_c = control

    report = ExperimentReport(
        "E6_frequency_cap",
        "ads per user per (accelerated) day for a cap-1 line item",
    )
    levels = sorted(set(hist_b) | set(hist_c))
    report.table(
        "user-day observations by impression count",
        ["impressions/user/day", "corrupt feed", "healthy feed"],
        [[lvl, hist_b.get(lvl, 0), hist_c.get(lvl, 0)] for lvl in levels],
    )
    report.table(
        "root-cause query: feed writes storing frequency_count = 0",
        ["run", "zero-count feed writes"],
        [["corrupt feed", zeros_b], ["healthy feed", zeros_c]],
    )
    report.note(
        f"profile store recorded {scenario_b.platform.profiles.corrupted_writes} "
        f"corrupted writes in the buggy run."
    )
    report.emit()

    violations_buggy = sum(c for lvl, c in hist_b.items() if lvl > 1)
    violations_control = sum(c for lvl, c in hist_c.items() if lvl > 1)
    # The bug reproduces: users exceed the cap only under the corrupt feed.
    assert violations_buggy > 0
    assert violations_control == 0
    # And the root cause is directly visible in profile_update events.
    assert zeros_b > 0
    assert zeros_c == 0
