"""E1 — paper Fig. 9/10: spam-bot detection (case study 8.1).

Runs the paper's query — bid requests grouped by user id in 10-second
tumbling windows on the BidServers — over a trace with two bots hidden
in human page-view traffic, and regenerates the Fig. 10 distribution:
per-user per-window request counts decay exponentially for humans
while the bots sit orders of magnitude above.

The paper ran 20 minutes of production traffic; the simulated trace is
5 virtual minutes (the distribution shape is stationary).
"""

import math
from collections import Counter

from repro.adplatform import spam_scenario
from repro.cluster import run_to_completion
from repro.reporting import ExperimentReport

TRACE_SECONDS = 300.0


def run_experiment():
    scenario = spam_scenario(
        users=400, pageview_rate=12.0, bot_count=2, bot_batch=60, bot_period=2.0,
    )
    scenario.start(until=TRACE_SECONDS)
    handle = scenario.cluster.submit(
        f"Select bid.user_id, COUNT(*) from bid "
        f"@[Service in BidServers] window 10s duration {int(TRACE_SECONDS)}s "
        f"group by bid.user_id;"
    )
    results = run_to_completion(scenario.cluster, handle)
    bots = {b.user_id for b in scenario.extras["bots"]}
    return scenario, results, bots


def test_fig10_spam_detection(benchmark):
    scenario, results, bots = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )

    # Fig. 10's y-axis: log(count) levels; dot size: users at the level.
    level_histogram: Counter = Counter()
    bot_levels: Counter = Counter()
    human_max = 0
    bot_min_per_window = []
    for window in results.windows:
        window_bot_counts = []
        for row in window.rows:
            user_id, count = row[0], row[1]
            level = int(math.log2(max(count, 1)))
            if user_id in bots:
                bot_levels[level] += 1
                window_bot_counts.append(count)
            else:
                level_histogram[level] += 1
                human_max = max(human_max, count)
        if window_bot_counts:
            bot_min_per_window.append(min(window_bot_counts))

    report = ExperimentReport("E1_fig10_spam", "per-user bid counts per 10s window")
    report.table(
        "human users per log2(count) level (all windows pooled)",
        ["log2(count)", "user-window observations"],
        [[lvl, level_histogram[lvl]] for lvl in sorted(level_histogram)],
    )
    report.table(
        "bot observations per level",
        ["log2(count)", "bot-window observations"],
        [[lvl, bot_levels[lvl]] for lvl in sorted(bot_levels)],
    )
    report.note(
        f"windows={len(results.windows)}  human max count={human_max}  "
        f"bot min count={min(bot_min_per_window)}  bots={sorted(bots)}"
    )
    report.emit()

    # Shape assertions (the figure's story):
    # 1. Human request counts decay: level-0/1 mass dominates higher levels.
    low = level_histogram[0] + level_histogram[1]
    high = sum(c for lvl, c in level_histogram.items() if lvl >= 4)
    assert low > 10 * max(high, 1)
    # 2. Monotone-ish decay across the first levels.
    assert level_histogram[1] >= level_histogram[3]
    # 3. Bots are separated from every human in every window they appear.
    assert min(bot_min_per_window) > human_max
    # 4. Bots appear in (essentially) every window — high frequency.
    assert len(bot_min_per_window) >= len(results.windows) - 1
