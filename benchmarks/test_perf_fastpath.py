"""E12 — host-agent fast-path microbenchmarks (anchors E7's cost model).

Measures the actual wall-clock cost of the ``log()`` call — the only
Scrub code on the application's request path — across the regimes that
matter for the minimal-impact claim:

* disabled probe (no query on the event type): the cost every
  instrumented call site pays all the time;
* active query, selection rejects;
* active query, match + projection + buffering;
* aggressive event sampling (matched but mostly not shipped);
* eight concurrent queries on one event type;
* overload (full buffer): the drop path must not be slower than the
  ship path.

The Python prototype's absolute numbers are larger than a native
agent's by a language-constant factor; the *ratios* between these
regimes are what the overhead experiment's cost model encodes.
"""

import math

import pytest

from repro.core.agent import RecordingTransport, ScrubAgent
from repro.core.agent.transport import EventBatch
from repro.core.events import EventRegistry
from repro.core.query import parse_query, plan_query, validate_query
from repro.reporting import ExperimentReport


class NullTransport:
    def send(self, batch: EventBatch) -> None:
        pass


def make_agent(buffer_capacity=1_000_000, flush_batch_size=10**9):
    registry = EventRegistry()
    registry.define("bid", [
        ("exchange_id", "long"), ("city", "string"), ("bid_price", "double"),
        ("user_id", "long"),
    ])
    registry.define("click", [("user_id", "long")])
    agent = ScrubAgent(
        "h1", registry, NullTransport(),
        buffer_capacity=buffer_capacity, flush_batch_size=flush_batch_size,
    )
    return registry, agent


def install(agent, registry, text, query_id="q1"):
    plan = plan_query(validate_query(parse_query(text), registry), query_id)
    for obj in plan.host_objects:
        agent.install(obj)


PAYLOAD = {"exchange_id": 5, "city": "San Jose", "bid_price": 1.25, "user_id": 7}


@pytest.mark.benchmark(group="fastpath")
def test_log_disabled_probe(benchmark):
    _registry, agent = make_agent()
    # A query exists, but on a different event type: the 'bid' call site
    # still takes the fast path.
    install(agent, agent.registry, "select COUNT(*) from click;")
    benchmark(lambda: agent.log("bid", PAYLOAD, request_id=1))
    assert agent.stats.events_examined == 0


@pytest.mark.benchmark(group="fastpath")
def test_log_no_query_at_all(benchmark):
    _registry, agent = make_agent()
    benchmark(lambda: agent.log("bid", PAYLOAD, request_id=1))


@pytest.mark.benchmark(group="fastpath")
def test_log_selection_rejects(benchmark):
    registry, agent = make_agent()
    install(agent, registry,
            "select COUNT(*) from bid where bid.exchange_id = 99;")
    benchmark(lambda: agent.log("bid", PAYLOAD, request_id=1))
    assert agent.stats.events_matched == 0


@pytest.mark.benchmark(group="fastpath")
def test_log_match_and_ship(benchmark):
    registry, agent = make_agent()
    install(agent, registry,
            "select bid.user_id, COUNT(*) from bid "
            "where bid.exchange_id = 5 group by bid.user_id;")
    counter = iter(range(10**9))
    benchmark(lambda: agent.log("bid", PAYLOAD, request_id=next(counter)))
    assert agent.stats.events_shipped > 0


@pytest.mark.benchmark(group="fastpath")
def test_log_match_sampled_out(benchmark):
    registry, agent = make_agent()
    install(agent, registry,
            "select COUNT(*) from bid sample events 1%;")
    counter = iter(range(10**9))
    benchmark(lambda: agent.log("bid", PAYLOAD, request_id=next(counter)))
    assert agent.stats.events_shipped < agent.stats.events_matched


@pytest.mark.benchmark(group="fastpath")
def test_log_eight_concurrent_queries(benchmark):
    registry, agent = make_agent()
    for i in range(8):
        install(
            agent, registry,
            f"select COUNT(*) from bid where bid.exchange_id = {i};",
            query_id=f"q{i}",
        )
    counter = iter(range(10**9))
    benchmark(lambda: agent.log("bid", PAYLOAD, request_id=next(counter)))


@pytest.mark.benchmark(group="fastpath")
def test_log_overload_drop_path(benchmark):
    registry, agent = make_agent(buffer_capacity=16)
    install(agent, registry, "select COUNT(*) from bid;")
    for i in range(16):
        agent.log("bid", PAYLOAD, request_id=i)  # fill the buffer
    counter = iter(range(100, 10**9))
    benchmark(lambda: agent.log("bid", PAYLOAD, request_id=next(counter)))
    assert agent.stats.events_dropped > 0


def test_fastpath_ratio_report(benchmark):
    """Summarises the regimes into the E12 artifact and checks the
    orderings the minimal-impact design relies on."""
    import timeit

    def measure(setup_agent, n=20_000):
        agent = setup_agent()
        counter = iter(range(10**9))
        return timeit.timeit(
            lambda: agent.log("bid", PAYLOAD, request_id=next(counter)),
            number=n,
        ) / n

    def disabled():
        _r, agent = make_agent()
        return agent

    def rejecting():
        registry, agent = make_agent()
        install(agent, registry,
                "select COUNT(*) from bid where bid.exchange_id = 99;")
        return agent

    def shipping():
        registry, agent = make_agent()
        install(agent, registry, "select COUNT(*) from bid;")
        return agent

    def sampled():
        registry, agent = make_agent()
        install(agent, registry, "select COUNT(*) from bid sample events 1%;")
        return agent

    def dropping():
        registry, agent = make_agent(buffer_capacity=4)
        install(agent, registry, "select COUNT(*) from bid;")
        for i in range(4):
            agent.log("bid", PAYLOAD, request_id=i)
        return agent

    def run_all():
        return {
            "disabled probe": measure(disabled),
            "selection rejects": measure(rejecting),
            "match + ship": measure(shipping),
            "match, sampled out": measure(sampled),
            "overload (drop)": measure(dropping),
        }

    times = benchmark.pedantic(run_all, rounds=1, iterations=1)
    base = times["disabled probe"]
    report = ExperimentReport(
        "E12_fastpath", "log() wall-clock cost per regime (Python prototype)"
    )
    report.table(
        "per-call cost",
        ["regime", "ns/call", "x disabled-probe"],
        [[k, f"{v * 1e9:,.0f}", f"{v / base:,.1f}x"] for k, v in times.items()],
    )
    report.note(
        "the E7 cost model encodes these ratios at native-agent absolute "
        "scale (see repro.cluster.host.CostModel)."
    )
    report.emit()

    # The orderings the design depends on:
    assert times["disabled probe"] < times["selection rejects"]
    assert times["selection rejects"] < times["match + ship"]
    # In Python, the sampling hash costs about as much as the avoided
    # buffer append, so the sampled-out call is merely not-slower; the
    # saving that matters (bytes shipped, flushes, central work) shows in
    # E7/E9.  A native agent's hash is tens of ns.
    assert times["match, sampled out"] < times["match + ship"] * 1.2
    # Dropping must not cost more than shipping (never block, never slow).
    assert times["overload (drop)"] < times["match + ship"] * 1.5
    # The disabled probe is cheap in absolute terms too (< 3 µs even in
    # Python; a native agent is tens of ns).
    assert base < 3e-6
