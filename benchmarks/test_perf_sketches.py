"""E13 — probabilistic aggregate accuracy & throughput (TOP-K, HLL).

Scrub trades exactness for bounded memory in its probabilistic
aggregates (paper §3.2): TOP-K via the Space-Saving summary [36] and
COUNT_DISTINCT via HyperLogLog [27].  These benchmarks measure:

* TOP-K recall and count error against exact counting on Zipf streams
  of varying skew (heavy hitters exist at high skew, barely at low);
* HLL relative error across cardinalities against the theoretical
  1.04/sqrt(m) standard error;
* single-core update throughput for both sketches (they run per event
  at ScrubCentral, so they must be cheap).
"""

import random
from collections import Counter

import pytest

from repro.core.approx import HyperLogLog, SpaceSaving
from repro.reporting import ExperimentReport


def zipf_stream(n, universe, alpha, seed):
    rng = random.Random(seed)
    weights = [1.0 / (i + 1) ** alpha for i in range(universe)]
    return rng.choices(range(universe), weights=weights, k=n)


def test_topk_accuracy_vs_exact(benchmark):
    def run():
        rows = []
        k = 10
        for alpha in (1.5, 1.1, 0.8):
            stream = zipf_stream(50_000, 5_000, alpha, seed=13)
            truth = Counter(stream)
            true_top = [item for item, _count in truth.most_common(k)]
            summary = SpaceSaving(capacity=k * 10)
            summary.update(stream)
            reported = summary.top(k)
            recall = len({t.item for t in reported} & set(true_top)) / k
            max_rel_err = max(
                (t.count - truth[t.item]) / max(truth[t.item], 1)
                for t in reported
            )
            rows.append([alpha, f"{recall * 100:.0f}%", f"{max_rel_err * 100:.1f}%",
                         len(summary)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report = ExperimentReport(
        "E13_sketches_topk",
        "Space-Saving TOP-10 vs exact on Zipf streams (50k events, capacity 100)",
    )
    report.table(
        "recall and worst count overestimate",
        ["zipf alpha", "recall@10", "max count error", "counters kept"],
        rows,
    )
    report.emit()
    by_alpha = {r[0]: r for r in rows}
    # High skew: perfect recall, tiny error.
    assert by_alpha[1.5][1] == "100%"
    # Recall degrades gracefully as the distribution flattens but the
    # memory stays fixed at the 100-counter capacity.
    assert all(r[3] <= 100 for r in rows)
    assert float(by_alpha[0.8][1].rstrip("%")) >= 50.0


def test_hll_error_vs_theory(benchmark):
    def run():
        rows = []
        for true_n in (100, 1_000, 10_000, 100_000):
            hll = HyperLogLog(precision=12)
            for i in range(true_n):
                hll.add(f"user-{i}")
            estimate = hll.count()
            rel = abs(estimate - true_n) / true_n
            rows.append([true_n, estimate, f"{rel * 100:.2f}%",
                         f"{hll.standard_error * 100:.2f}%"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report = ExperimentReport(
        "E13_sketches_hll",
        "HyperLogLog (p=12, 4 KiB) estimate vs true cardinality",
    )
    report.table(
        "relative error vs theoretical standard error",
        ["true distinct", "estimate", "rel. error", "1.04/sqrt(m)"],
        rows,
    )
    report.emit()
    for row in rows:
        rel = float(row[2].rstrip("%")) / 100
        sigma = float(row[3].rstrip("%")) / 100
        assert rel < 5 * sigma


@pytest.mark.benchmark(group="sketch-throughput")
def test_spacesaving_update_rate(benchmark):
    stream = zipf_stream(10_000, 2_000, 1.2, seed=7)
    summary = SpaceSaving(capacity=100)

    def update_all():
        summary.update(stream)

    benchmark(update_all)
    rate = len(stream) / benchmark.stats["mean"]
    assert rate > 200_000  # events/s on one core


@pytest.mark.benchmark(group="sketch-throughput")
def test_hll_update_rate(benchmark):
    items = [f"user-{i % 5_000}" for i in range(10_000)]
    hll = HyperLogLog(precision=12)

    def update_all():
        hll.update(items)

    benchmark(update_all)
    rate = len(items) / benchmark.stats["mean"]
    assert rate > 200_000
