"""E2 — paper Fig. 11/12: validating a new ad exchange (case study 8.2).

Counts impressions per exchange with two-level sampling (the paper
samples 10% of impression events on 10% of the PresentationServers in
DC1; at simulated scale we sample 50% of 12 servers and 50% of events),
and regenerates the Fig. 12 time series: exchange D's impressions are
zero until its activation instant, then ramp to a healthy share while
the established exchanges stay steady.
"""

from repro.adplatform import new_exchange_scenario
from repro.cluster import run_to_completion
from repro.reporting import ExperimentReport

TRACE_SECONDS = 180.0
ACTIVATION = 90.0


def run_experiment():
    scenario = new_exchange_scenario(
        users=400, pageview_rate=15.0, activation_time=ACTIVATION,
        presentationservers=12,
    )
    scenario.start(until=TRACE_SECONDS)
    handle = scenario.cluster.submit(
        f"Select impression.exchange_id, COUNT(*) from impression "
        f"@[Service in PresentationServers] "
        f"sample hosts 50% sample events 50% "
        f"window 10s duration {int(TRACE_SECONDS)}s "
        f"group by impression.exchange_id;"
    )
    results = run_to_completion(scenario.cluster, handle)
    return scenario, handle, results


def test_fig12_new_exchange_rampup(benchmark):
    scenario, handle, results = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    exchanges = scenario.extras["exchanges"]
    new_ex = scenario.extras["new_exchange"]
    names = {e.exchange_id: e.name for e in exchanges}

    series_rows = []
    per_exchange_before: dict[int, float] = {e.exchange_id: 0.0 for e in exchanges}
    per_exchange_after: dict[int, float] = {e.exchange_id: 0.0 for e in exchanges}
    for window in results.windows:
        counts = {row[0]: row[1] for row in window.rows}
        series_rows.append(
            [window.window_start]
            + [counts.get(e.exchange_id, 0) for e in exchanges]
        )
        for e in exchanges:
            value = counts.get(e.exchange_id, 0)
            if window.window_end <= ACTIVATION:
                per_exchange_before[e.exchange_id] += value
            elif window.window_start >= ACTIVATION:
                per_exchange_after[e.exchange_id] += value

    report = ExperimentReport(
        "E2_fig12_new_exchange",
        "estimated impressions per exchange per 10s window "
        "(50% hosts x 50% events sampled)",
    )
    report.note(
        f"targeted {len(handle.targeted_hosts)} of {len(handle.planned_hosts)} "
        f"PresentationServers; exchange {new_ex.name} activates at t={ACTIVATION:g}s"
    )
    report.table(
        "Fig. 12 series",
        ["t"] + [names[e.exchange_id] for e in exchanges],
        series_rows,
    )
    report.table(
        "totals",
        ["exchange", "before activation", "after activation"],
        [
            [names[e.exchange_id],
             per_exchange_before[e.exchange_id],
             per_exchange_after[e.exchange_id]]
            for e in exchanges
        ],
    )
    report.emit()

    # Host sampling honored exactly.
    assert len(handle.targeted_hosts) == 6
    # D is silent before activation and healthy after.
    assert per_exchange_before[new_ex.exchange_id] == 0
    assert per_exchange_after[new_ex.exchange_id] > 0
    # Established exchanges serve throughout.
    for e in exchanges:
        if e is not new_ex:
            assert per_exchange_before[e.exchange_id] > 0
            assert per_exchange_after[e.exchange_id] > 0
    # D's configured share is the largest, so after ramp-up it should be
    # a substantial fraction of the leader's volume (healthy integration).
    leader_after = max(
        v for k, v in per_exchange_after.items() if k != new_ex.exchange_id
    )
    assert per_exchange_after[new_ex.exchange_id] > 0.4 * leader_after
