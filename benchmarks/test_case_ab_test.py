"""E3 — paper Figs. 13/14/15: A/B testing of ad targeting models (8.3).

Model A (baseline) runs on one pod of servers, the improved model B on
another.  The paper's query templates — ``1000*AVG(impression.cost)``
for CPM (Fig. 13) and ``COUNT(*)`` over impressions/clicks for CTR
(Fig. 14) — target each pod's host list.  Expected Fig. 15 shape:
CTR(B) > CTR(A) while CPM stays roughly equal.
"""

from repro.adplatform import ab_test_scenario
from repro.reporting import ExperimentReport

TRACE_SECONDS = 180.0


def run_experiment():
    scenario = ab_test_scenario(users=600, pageview_rate=25.0)
    scenario.start(until=TRACE_SECONDS)
    focal = scenario.extras["focal_line_item"].line_item_id
    cluster = scenario.cluster

    handles = {}
    for tag in ("A", "B"):
        hosts = ", ".join(scenario.extras[f"model_{tag.lower()}_hosts"])
        handles[f"cpm_{tag}"] = cluster.submit(
            f"Select 1000*AVG(impression.cost) from impression "
            f"where impression.line_item_id = {focal} "
            f"@[Servers in ({hosts})] "
            f"window {int(TRACE_SECONDS)}s duration {int(TRACE_SECONDS)}s;"
        )
        for event in ("impression", "click"):
            handles[f"{event}_{tag}"] = cluster.submit(
                f"Select COUNT(*) from {event} "
                f"where {event}.line_item_id = {focal} "
                f"@[Servers in ({hosts})] "
                f"window {int(TRACE_SECONDS)}s duration {int(TRACE_SECONDS)}s;"
            )

    cluster.run_until(TRACE_SECONDS + 5.0)
    totals = {}
    for key, handle in handles.items():
        results = cluster.server.finish(handle.query_id)
        values = [v for v in results.column(results.columns[0]) if v is not None]
        totals[key] = sum(values) if values else 0.0
    return totals


def test_fig15_ab_test_cpm_ctr(benchmark):
    totals = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    ctr_a = totals["click_A"] / max(totals["impression_A"], 1)
    ctr_b = totals["click_B"] / max(totals["impression_B"], 1)

    report = ExperimentReport(
        "E3_fig15_ab_test", "CPM and CTR of one line item under models A vs B"
    )
    report.table(
        "Fig. 15 (reproduced)",
        ["metric", "model A", "model B"],
        [
            ["impressions", totals["impression_A"], totals["impression_B"]],
            ["clicks", totals["click_A"], totals["click_B"]],
            ["CTR", ctr_a, ctr_b],
            ["CPM ($)", totals["cpm_A"], totals["cpm_B"]],
        ],
    )
    report.note(
        "paper-reported shape: B achieved higher CTR than A while keeping "
        "CPM more or less the same (Fig. 15a/b)."
    )
    report.emit()

    assert totals["impression_A"] > 100 and totals["impression_B"] > 100
    # Fig. 15b: B's CTR clearly higher.
    assert ctr_b > ctr_a * 1.15
    # Fig. 15a: CPM roughly equal (same advisory band on both sides).
    assert abs(totals["cpm_A"] - totals["cpm_B"]) / totals["cpm_A"] < 0.15
