"""E8 — paper §9/abstract: request-latency impact.

"...and a 1% increase in request latency."  Measures the end-to-end
bid-transaction latency (BidServer + AdServer work, the paper's
under-20 ms transaction) with Scrub idle versus under a realistic
concurrent query load, on identical traffic.

Expected shape: the mean and p99 latency increase by single-digit
percent; absolute latencies stay far inside the 20 ms SLO.
"""

from repro.adplatform import perf_scenario
from repro.cluster import summarize_latencies
from repro.reporting import ExperimentReport

TRACE_SECONDS = 40.0

QUERIES = [
    "Select bid.user_id, COUNT(*) from bid @[Service in BidServers] "
    "window 10s duration {d}s group by bid.user_id;",
    "Select exclusion.reason, COUNT(*) from exclusion "
    "@[Service in AdServers] window 10s duration {d}s "
    "group by exclusion.reason;",
    "Select AVG(bid.bid_price) from bid @[Service in BidServers] "
    "window 10s duration {d}s;",
    "Select COUNT(*) from auction @[Service in AdServers] "
    "window 10s duration {d}s;",
]


def run_point(with_queries: bool):
    scenario = perf_scenario(users=300, pageview_rate=20.0)
    scenario.start(until=TRACE_SECONDS)
    if with_queries:
        for q in QUERIES:
            scenario.cluster.submit(q.format(d=int(TRACE_SECONDS)))
    scenario.cluster.run_until(TRACE_SECONDS + 4.0)
    return summarize_latencies(scenario.platform.bid_latencies())


def test_request_latency_impact(benchmark):
    def run_both():
        return run_point(False), run_point(True)

    baseline, with_scrub = benchmark.pedantic(run_both, rounds=1, iterations=1)

    mean_increase = with_scrub.mean / baseline.mean - 1.0
    p99_increase = with_scrub.p99 / baseline.p99 - 1.0

    report = ExperimentReport(
        "E8_request_latency", "bid transaction latency: Scrub off vs on"
    )
    report.table(
        "latency (ms)",
        ["metric", "scrub off", "scrub on (4 queries)", "increase"],
        [
            ["mean", baseline.mean * 1e3, with_scrub.mean * 1e3,
             f"{mean_increase * 100:.2f}%"],
            ["p50", baseline.p50 * 1e3, with_scrub.p50 * 1e3, ""],
            ["p95", baseline.p95 * 1e3, with_scrub.p95 * 1e3, ""],
            ["p99", baseline.p99 * 1e3, with_scrub.p99 * 1e3,
             f"{p99_increase * 100:.2f}%"],
            ["max", baseline.max * 1e3, with_scrub.max * 1e3, ""],
        ],
    )
    report.note(
        f"requests measured: {baseline.count} (off) / {with_scrub.count} (on); "
        "paper-reported: ~1% request latency increase; 20 ms transaction SLO."
    )
    report.emit()

    # Scrub adds latency, but little: between 0 and a few percent.
    assert 0.0 < mean_increase < 0.05
    # Absolute latency stays far inside the 20 ms transaction budget.
    assert with_scrub.p99 < 0.020
    # Identical traffic on both sides.
    assert baseline.count == with_scrub.count
