"""E4 — paper Fig. 16: line-item exclusion distribution (case study 8.4).

The paper's query template equi-joins ``bid`` events (BidServers) with
``exclusion`` events (AdServers) on the request id, selecting on a
particular exchange and publisher, and counts exclusions — giving the
distribution whose anomalies identify misbehaving line items.

Also exercises the scalability argument: with L active line items,
every bid request produces O(L) exclusions, so the host-side selection
(exchange/publisher) must cut the stream before it is shipped.
"""

from collections import Counter

from repro.adplatform import exclusion_scenario
from repro.cluster import run_to_completion
from repro.reporting import ExperimentReport

TRACE_SECONDS = 60.0
LINE_ITEMS = 120


def run_experiment():
    scenario = exclusion_scenario(
        users=300, pageview_rate=10.0, line_items=LINE_ITEMS,
    )
    scenario.start(until=TRACE_SECONDS)
    exchange = scenario.extras["exchanges"][0]
    publisher_id = 6_000_001  # first publisher block id

    # Fig. 16's query: exclusions for one exchange and one publisher,
    # joined with the bid on the request id, grouped by line item.
    by_line_item = scenario.cluster.submit(
        f"Select exclusion.line_item_id, COUNT(*) from bid, exclusion "
        f"where bid.exchange_id = {exchange.exchange_id} "
        f"and exclusion.publisher_id = {publisher_id} "
        f"@[Service in (BidServers, AdServers)] "
        f"window {int(TRACE_SECONDS)}s duration {int(TRACE_SECONDS)}s "
        f"group by exclusion.line_item_id;"
    )
    by_reason = scenario.cluster.submit(
        f"Select exclusion.reason, COUNT(*) from bid, exclusion "
        f"where bid.exchange_id = {exchange.exchange_id} "
        f"@[Service in (BidServers, AdServers)] "
        f"window {int(TRACE_SECONDS)}s duration {int(TRACE_SECONDS)}s "
        f"group by exclusion.reason;"
    )
    results_li = run_to_completion(scenario.cluster, by_line_item)
    results_reason = scenario.cluster.server.finish(by_reason.query_id)
    return scenario, results_li, results_reason


def test_fig16_exclusion_distribution(benchmark):
    scenario, results_li, results_reason = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )

    per_line_item: Counter = Counter()
    for window in results_li.windows:
        for row in window.rows:
            per_line_item[row[0]] += row[1]
    per_reason: Counter = Counter()
    for window in results_reason.windows:
        for row in window.rows:
            per_reason[row[0]] += row[1]

    report = ExperimentReport(
        "E4_fig16_exclusions",
        "exclusion counts via bid ⋈ exclusion (one exchange/publisher)",
    )
    top = per_line_item.most_common(15)
    report.table(
        "Fig. 16: exclusions per line item (top 15, one publisher)",
        ["line_item_id", "exclusions"],
        [[li, c] for li, c in top],
    )
    report.table(
        "exclusion reasons (whole exchange)",
        ["reason", "count"],
        [[r, c] for r, c in per_reason.most_common()],
    )
    total_generated = sum(
        a.host.agent.stats.events_logged for a in scenario.platform.adservers
    )
    total_joined = sum(per_reason.values())
    report.note(
        f"events logged on AdServers: {total_generated:,}; exclusion rows "
        f"matching the selection: {total_joined:,} — host-side selection cut "
        f"the shipped stream to {total_joined / max(total_generated, 1):.1%}."
    )
    report.emit()

    # Every bid request produces many exclusions: the joined count for one
    # exchange alone must exceed the number of bid requests it got.
    assert total_joined > 1000
    # The distribution is informative: exchange-restricted line items are
    # excluded on essentially every request for this publisher (the count
    # ceiling), while geo/segment items fall at population-dependent
    # levels well below it — the spread the Fig. 16 comparison against
    # well-behaved line items relies on.
    counts = sorted(per_line_item.values(), reverse=True)
    assert counts[0] >= 2 * counts[-1]
    assert len(set(counts)) >= 5
    # Reasons span the targeting dimensions.
    assert {"GEO_MISMATCH", "SEGMENT_MISMATCH"} <= set(per_reason)
    # Selection happened on the hosts: shipped exclusion events are a
    # fraction of generated ones (one exchange of four + one publisher).
    assert total_joined < total_generated
